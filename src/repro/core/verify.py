"""Static verification of augmented programs — a lint for lowering.

The engine enforces these invariants dynamically (and prices them); this
verifier re-checks them *without* a device model, so policies and custom
augmentations can be validated cheaply, and failures come with a
complete issue list instead of the first crash:

* every (micro-)tensor is produced before use, never double-allocated,
  never double-freed;
* swap-ins have a host copy (a prior swap-out or an initial-host shard);
* swap-outs and frees act on keys that exist: an eviction of a
  non-resident tensor is flagged, and one whose key was *never*
  allocated anywhere (not produced, not an initial-host shard) is a
  distinct, more serious issue class — as is a free (even
  ``missing_ok``) of a never-allocated key, which indicates the
  lowering invented a ref;
* every scheduled operator is computed: once normally, plus optionally
  as recompute re-executions;
* the program ends clean — every transient allocation was released.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.augment import AugmentedProgram
from repro.errors import RuntimeExecutionError
from repro.graph.graph import Graph
from repro.runtime.instructions import (
    ComputeInstr,
    FreeInstr,
    SwapInInstr,
    SwapOutInstr,
    XferInstr,
)


def verify_program(
    graph: Graph, augmented: AugmentedProgram,
) -> list[str]:
    """Return a list of invariant violations (empty means clean)."""
    issues: list[str] = []
    program = augmented.program
    resident: set[tuple[int, int]] = set()
    host: set[tuple[int, int]] = {ref.key for ref in program.initial_host}
    #: Keys that were ever materialised anywhere (produced on device or
    #: present on host) — distinguishes "non-resident right now" from
    #: "this ref was invented out of thin air".
    ever_allocated: set[tuple[int, int]] = set(host)
    compute_counts: dict[int, int] = defaultdict(int)
    recompute_counts: dict[int, int] = defaultdict(int)

    for index, instr in enumerate(program.instructions):
        where = f"[{index}]"
        if isinstance(instr, ComputeInstr):
            for ref in instr.inputs:
                if ref.nbytes == 0:
                    continue  # zero-byte marker refs
                if ref.key not in resident and ref.key not in host:
                    issues.append(
                        f"{where} {instr.label!r} consumes "
                        f"{ref.label!r} which is neither resident nor "
                        f"on host"
                    )
            for ref in list(instr.outputs) + list(instr.alloc_only):
                if ref.nbytes == 0:
                    continue
                if ref.key in resident:
                    issues.append(
                        f"{where} {instr.label!r} re-allocates "
                        f"{ref.label!r}"
                    )
                resident.add(ref.key)
                ever_allocated.add(ref.key)
            if instr.tag == "merge":
                for ref in instr.inputs:
                    resident.discard(ref.key)
            if instr.op_id is not None:
                if instr.tag == "recompute":
                    recompute_counts[instr.op_id] += 1
                else:
                    compute_counts[instr.op_id] += 1
        elif isinstance(instr, SwapOutInstr):
            if instr.ref.key not in resident:
                if instr.ref.key not in ever_allocated:
                    issues.append(
                        f"{where} swap-out of never-allocated "
                        f"{instr.ref.label!r}"
                    )
                    # Don't fabricate a host copy for an invented ref —
                    # that would mask the downstream swap-in issue.
                    continue
                issues.append(
                    f"{where} swap-out of non-resident {instr.ref.label!r}"
                )
            resident.discard(instr.ref.key)
            host.add(instr.ref.key)
        elif isinstance(instr, SwapInInstr):
            if instr.ref.key not in host:
                issues.append(
                    f"{where} swap-in of {instr.ref.label!r} without a "
                    f"host copy"
                )
            if instr.ref.key in resident:
                issues.append(
                    f"{where} swap-in of already-resident "
                    f"{instr.ref.label!r}"
                )
            resident.add(instr.ref.key)
            ever_allocated.add(instr.ref.key)
        elif isinstance(instr, FreeInstr):
            if instr.ref.key not in resident:
                if instr.ref.key not in ever_allocated:
                    # Even missing_ok frees must name a key that existed
                    # at some point; an unknown key means the lowering
                    # invented the ref.
                    issues.append(
                        f"{where} free of never-allocated "
                        f"{instr.ref.label!r}"
                    )
                elif not instr.missing_ok:
                    issues.append(
                        f"{where} free of non-resident {instr.ref.label!r}"
                    )
            resident.discard(instr.ref.key)
        elif isinstance(instr, XferInstr):
            continue
        else:  # pragma: no cover - defensive
            issues.append(f"{where} unknown instruction {instr!r}")

    if resident:
        sample = sorted(resident)[:5]
        issues.append(
            f"program ends with {len(resident)} resident transient "
            f"tensors, e.g. {sample}"
        )

    # Every scheduled op computed the right number of times: micro
    # executions of a p-way split count p instructions.
    for op_id in augmented.schedule:
        count = compute_counts.get(op_id, 0)
        if count == 0:
            issues.append(
                f"scheduled op {graph.ops[op_id].name!r} never computed"
            )
    return issues


def assert_valid_program(graph: Graph, augmented: AugmentedProgram) -> None:
    """Raise :class:`RuntimeExecutionError` listing every violation."""
    issues = verify_program(graph, augmented)
    if issues:
        summary = "\n  ".join(issues[:20])
        raise RuntimeExecutionError(
            f"augmented program for {graph.name!r} failed verification "
            f"({len(issues)} issues):\n  {summary}"
        )
