"""TSPLIT core: the paper's primary contribution.

* :mod:`repro.core.plan` — per-tensor memory-strategy configuration
  (reside / swap / recompute / CPU-pinned, plus split settings).
* :mod:`repro.core.stensor` — the splittable-tensor abstraction
  (Figure 9 interfaces: ``set_config`` / ``split`` / ``merge``).
* :mod:`repro.core.profiler` — profiling-based estimation (Section V-B).
* :mod:`repro.core.simulate` — static memory-requirement simulation of a
  plan (the ``M_i`` the planner checks against GPU capacity).
* :mod:`repro.core.cost_model` — the analytic ΔM / ΔT models
  (Equations 2-6).
* :mod:`repro.core.planner` — the model-guided greedy planner
  (Algorithm 2).
* :mod:`repro.core.augment` — augmented sTensor-graph generation
  (Figure 10): inserts split/merge/swap/recompute operators and control
  edges, producing the runtime program.
"""

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.stensor import MicroTensor, STensor
from repro.core.profiler import Profiler, ProfileData
from repro.core.simulate import simulate_memory, plan_peak_memory
from repro.core.cost_model import CostModel, Candidate
from repro.core.planner import TsplitPlanner, PlannerOptions
from repro.core.augment import augment_graph, AugmentedProgram

__all__ = [
    "MemOption",
    "Plan",
    "TensorConfig",
    "MicroTensor",
    "STensor",
    "Profiler",
    "ProfileData",
    "simulate_memory",
    "plan_peak_memory",
    "CostModel",
    "Candidate",
    "TsplitPlanner",
    "PlannerOptions",
    "augment_graph",
    "AugmentedProgram",
]
