"""Shared split-capability rules.

Single source of truth for three questions asked by the cost model, the
static memory simulation, and the augmenter alike — they must agree, or
the planner's view of a plan diverges from what the runtime executes:

* can a kernel execute on micro-tensors of a named dimension?
* which split does a tensor *effectively* get (config + producer kernel
  support + axis extent)?
* which split does an operator execute with (first split output wins,
  then split inputs)?
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.graph import Graph
from repro.graph.ops import Operator, OpType
from repro.graph.tensor import (
    DIM_ATTRIBUTE,
    DIM_PARAMETER,
    DIM_SAMPLE,
    TensorSpec,
)

#: Op types that can execute channel/hidden ("parameter")-split without a
#: merge: the kernel is independent across that axis.
_PARAM_SPLIT_OK = frozenset({
    OpType.CONV2D, OpType.MATMUL, OpType.BATCHNORM, OpType.RELU,
    OpType.GELU, OpType.DROPOUT, OpType.ADD, OpType.POOL_MAX,
    OpType.POOL_AVG, OpType.SOFTMAX,
})

#: Op types that can execute attribute (height/time)-split without a merge.
_ATTR_SPLIT_OK = frozenset({
    OpType.RELU, OpType.GELU, OpType.DROPOUT, OpType.ADD,
    OpType.MATMUL, OpType.LAYERNORM, OpType.SOFTMAX,
})


@lru_cache(maxsize=None)
def op_supports_split(op_type: OpType, dim: str) -> bool:
    """Whether a kernel can run on micro-tensors of the given dimension.

    Pure function of (op type, dimension); memoised because the planner's
    candidate generation asks it millions of times per plan.
    """
    if dim == DIM_SAMPLE:
        return op_type.info.sample_splittable
    if dim == DIM_PARAMETER:
        return op_type in _PARAM_SPLIT_OK
    if dim == DIM_ATTRIBUTE:
        return op_type in _ATTR_SPLIT_OK
    return False


def effective_split(
    graph: Graph, plan, tensor: TensorSpec,
) -> tuple[str, int] | None:
    """The split a tensor actually gets under a plan, or None.

    Requires the configured dimension to exist on the tensor, the
    producing kernel to support it, and the axis extent to cover the
    part count.
    """
    return effective_split_config(
        graph, tensor, plan.config_for(tensor.tensor_id),
    )


def effective_split_config(
    graph: Graph, tensor: TensorSpec, cfg,
) -> tuple[str, int] | None:
    """:func:`effective_split` for an explicit config.

    Pure in (tensor, cfg) for a fixed graph, which is what lets the cost
    model memoise it across plans and probes.
    """
    if not cfg.is_split:
        return None
    if cfg.dim not in tensor.split_axes:
        return None
    producer = tensor.producer
    if producer is None:
        return None
    if not op_supports_split(graph.ops[producer].op_type, cfg.dim):
        return None
    axis = tensor.split_axes[cfg.dim]
    if tensor.shape[axis] < cfg.p_num:
        return None
    return (cfg.dim, cfg.p_num)


def op_exec_split(
    graph: Graph, plan, op: Operator,
) -> tuple[str, int] | None:
    """The (dim, p_num) an op executes with under a plan, or None.

    Priority: first split output, then first split input; the kernel
    must support the dimension. This mirrors the augmenter's runtime
    choice exactly, which is what lets the static model predict whether
    adjacent split operators form a streaming region.
    """
    for tid in list(op.outputs) + list(op.inputs):
        split = effective_split(graph, plan, graph.tensors[tid])
        if split is not None and op_supports_split(op.op_type, split[0]):
            return split
    return None
