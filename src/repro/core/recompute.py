"""Recomputation chains and strategies (Section V-D).

A RECOMPUTE tensor is freed after its last forward use; before its
backward consumer runs, the forward sub-graph between the nearest
*resident* ancestors (checkpoints) and the tensor is re-executed. When a
chain of consecutive tensors is evicted, the paper describes two
strategies:

* **speed-centric** (one pass): recompute the whole chain once, keep all
  intermediates — O(N) compute, O(N) extra memory;
* **memory-centric**: re-run the chain from the checkpoint for *every*
  backward layer, keeping only the tensor needed next — O(N^2) compute,
  O(1) extra memory (SuperNeurons' choice, and TSPLIT's default);
* **LRU hybrid**: run speed-centric but drop the least-recently-used
  intermediate whenever memory runs short.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.errors import PlanningError
from repro.graph.graph import Graph
from repro.graph.ops import Phase
from repro.graph.tensor import TensorKind


class RecomputeStrategy(enum.Enum):
    """How chains of recomputed tensors are regenerated at runtime."""

    MEMORY_CENTRIC = "memory_centric"
    SPEED_CENTRIC = "speed_centric"
    LRU = "lru"


def recompute_chain(
    graph: Graph,
    tensor_id: int,
    is_resident: Callable[[int], bool],
    *,
    max_len: int = 256,
    deps: set[int] | None = None,
) -> list[int]:
    """Forward op ids needed to regenerate ``tensor_id``, in execution order.

    Walks producer edges backwards from the target until every required
    input is resident (a checkpoint, a parameter, or the graph input).
    Parameters and graph inputs are always considered available.

    When ``deps`` is given, every tensor id whose residency was queried is
    added to it — the exact set of tensors whose plan configuration this
    chain depends on (incremental planning invalidates on them).

    Raises
    ------
    PlanningError
        If the tensor has no producer (cannot be recomputed) or the chain
        exceeds ``max_len`` ops.
    """
    target = graph.tensors[tensor_id]
    if target.producer is None:
        raise PlanningError(
            f"tensor {target.name!r} has no producer; cannot recompute"
        )

    chain: list[int] = []
    seen_ops: set[int] = set()
    stack = [target.producer]
    while stack:
        op_id = stack.pop()
        if op_id in seen_ops:
            continue
        op = graph.ops[op_id]
        if op.phase is not Phase.FORWARD:
            raise PlanningError(
                f"recompute chain of {target.name!r} reaches non-forward "
                f"op {op.name!r}"
            )
        seen_ops.add(op_id)
        chain.append(op_id)
        if len(chain) > max_len:
            raise PlanningError(
                f"recompute chain of {target.name!r} exceeds {max_len} ops"
            )
        for tid in op.inputs:
            tensor = graph.tensors[tid]
            if tensor.kind in (
                TensorKind.PARAM, TensorKind.INPUT, TensorKind.OPTIMIZER_STATE,
            ):
                continue
            if deps is not None:
                deps.add(tid)
            if is_resident(tid):
                continue
            producer = tensor.producer
            if producer is None:
                raise PlanningError(
                    f"recompute chain of {target.name!r} needs tensor "
                    f"{tensor.name!r} which has no producer"
                )
            stack.append(producer)
    # Execution order = topological = ascending op id for front-to-back
    # built graphs.
    chain.sort()
    return chain


def chain_compute_time(
    chain: list[int],
    op_time: Callable[[int], float],
) -> float:
    """Total execution time of a recompute chain."""
    return sum(op_time(op_id) for op_id in chain)


def planning_chain(
    graph: Graph,
    tensor_id: int,
    plan,
    free_step: dict[int, int],
    regen_step: int,
    *,
    max_len: int = 256,
    deps: set[int] | None = None,
) -> list[int]:
    """The chain the *augmenter* will emit, predicted at planning time.

    A tensor is available as a chain source at the regeneration step iff
    it is swap-configured (host copy exists), or it resides and its live
    interval still covers the regeneration step. A RESIDE tensor that
    died before the backward pass (e.g. a conv output only consumed in
    the forward) must itself be regenerated — the transient the static
    memory model has to charge.
    """
    from repro.core.plan import MemOption  # local: avoid import cycle

    def available(tid: int) -> bool:
        cfg = plan.config_for(tid)
        if cfg.opt is MemOption.SWAP:
            return True
        if cfg.opt is MemOption.RECOMPUTE:
            return False
        return free_step.get(tid, -1) >= regen_step

    return recompute_chain(
        graph, tensor_id, available, max_len=max_len, deps=deps,
    )


def chain_extra_bytes(graph: Graph, chain: list[int], target_id: int) -> int:
    """Transient bytes a free-as-you-go chain adds beyond the target.

    Free-as-you-go (memory-centric) execution keeps, at any moment, at
    most one chain op's inputs + outputs + workspace plus the target
    itself; the extra charge is that peak minus the target's own size
    (which the regeneration window already accounts for).
    """
    target_size = graph.tensors[target_id].size_bytes
    return max(0, chain_transient_bytes(graph, chain) - target_size)


def chain_transient_bytes(graph: Graph, chain: list[int]) -> int:
    """Peak extra memory of a memory-centric chain execution.

    Memory-centric recomputation keeps at most the largest op's inputs +
    outputs + workspace alive at once.
    """
    peak = 0
    for op_id in chain:
        op = graph.ops[op_id]
        need = op.workspace_bytes
        for tid in op.inputs + op.outputs:
            tensor = graph.tensors[tid]
            if tensor.kind is TensorKind.ACTIVATION:
                need += tensor.size_bytes
        peak = max(peak, need)
    return peak
