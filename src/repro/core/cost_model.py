"""Analytic cost models for swap / recompute / split — Equations 2-6.

For a memory bottleneck at operation ``Op_i``, the planner needs, for
every candidate (tensor, strategy): the memory reduction ``ΔM_i`` at the
bottleneck and the extra iteration time ``ΔT``. Three mechanisms:

* **swap** (Eq. 2-3): ΔM is the tensor size; ΔT is the part of the PCIe
  transfer that cannot hide behind idle link time — computed against a
  simulated PCIe occupancy ``Oc_u`` per scheduled op (Section V-B: ideal
  swap-out begins at generation time, ideal swap-in a few ops before the
  backward use).
* **recompute** (Eq. 2, 4): ΔM is the tensor size; ΔT is the profiled
  time of the regeneration chain from the nearest resident checkpoints
  (memory-centric accounting).
* **split** (Eq. 5-6): applies to the bottleneck op's own input/output
  tensors; ΔM is the reduction from streaming micro-tensors
  (``size - 2*size/p``, plus the workspace shrink); ΔT combines the
  micro-tensor swap/recompute cost (now overlappable with the split op's
  own compute), the kernel-efficiency degradation of running ``p``
  micro-kernels, and merge copies for consumers that cannot execute
  split.

The source text of the paper omits Equations 4-5 (OCR loss); they are
reconstructed here from the surrounding prose and documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import RESIDE, MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.recompute import chain_compute_time, planning_chain
from repro.core.simulate import (
    PREFETCH_OPS,
    TensorTimeline,
    _contributions,
    needs_whole_staging,
    recompute_extra,
    tensor_timeline,
)
from repro.errors import PlanningError
from repro.graph.graph import Graph
from repro.graph.liveness import LivenessInfo, compute_liveness
from repro.graph.tensor import (
    DIM_ATTRIBUTE,
    DIM_PARAMETER,
    DIM_SAMPLE,
    TensorKind,
    TensorSpec,
)
from repro.core.split_rules import (
    effective_split,
    effective_split_config,
    op_exec_split,
    op_supports_split,
)
from repro.units import MB


@dataclass(frozen=True)
class Candidate:
    """One strategy choice the planner can apply.

    ``configs`` holds one or more (tensor id, config) assignments applied
    atomically — a single-tensor swap/recompute decision, or a *group*
    split aligning every tensor of the bottleneck op to one (dim, p_num).
    """

    configs: tuple[tuple[int, TensorConfig], ...]
    delta_m: float
    delta_t: float
    #: Members' configs *before* this candidate (for the cycle guard: the
    #: same assignment may be retried from a different starting state).
    prior: tuple[tuple[int, TensorConfig], ...] = ()

    #: The planner's greedy key ΔT / ΔM (lower is better). Materialised
    #: at construction: ``_better`` reads it twice per pairwise
    #: comparison, which a property would recompute every time.
    ratio: float = field(init=False)

    def __post_init__(self) -> None:
        ratio = (
            self.delta_t / self.delta_m if self.delta_m > 0 else float("inf")
        )
        object.__setattr__(self, "ratio", ratio)

    @property
    def key(self) -> tuple[frozenset, frozenset]:
        """Cycle-guard identity: the (before -> after) transition."""
        return (frozenset(self.prior), frozenset(self.configs))

    @property
    def tensor_id(self) -> int:
        """Primary tensor (first member), for reports."""
        return self.configs[0][0]

    @property
    def config(self) -> TensorConfig:
        """Primary config (first member), for reports."""
        return self.configs[0][1]

    @property
    def kind(self) -> str:
        """Coarse strategy classification for provenance and reports.

        ``"swap"`` / ``"recompute"`` for whole-tensor evictions,
        ``"split"`` for pure streaming splits, ``"split-swap"`` /
        ``"split-recompute"`` when the group's evicting members pair a
        split with an eviction (the paper's split-swap / split-recompute
        mechanisms).
        """
        has_split = any(cfg.is_split for _, cfg in self.configs)
        evict_opt = next(
            (cfg.opt.value for _, cfg in self.configs if cfg.evicts), None,
        )
        if has_split:
            return f"split-{evict_opt}" if evict_opt else "split"
        return evict_opt or self.configs[0][1].opt.value

    def describe(self) -> str:
        """Compact form: member configs plus the scored deltas."""
        members = ", ".join(
            f"t{tid}:{cfg.describe()}" for tid, cfg in self.configs
        )
        return (
            f"[{self.kind}] {members} "
            f"(dM={self.delta_m / MB:.1f}MB, dT={self.delta_t * 1e3:.3f}ms)"
        )


@dataclass(frozen=True)
class CostModelOptions:
    """Tuning knobs of the cost model / candidate generation."""

    prefetch_ops: int = PREFETCH_OPS
    split_p_nums: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)
    min_split_bytes: int = 8 * MB
    min_evict_bytes: int = 1 * MB
    max_recompute_chain: int = 96
    allow_split: bool = True
    allow_recompute: bool = True
    allow_swap: bool = True


_CONFIG_INTERN: dict[tuple[MemOption, int, str], TensorConfig] = {}


def _intern_config(
    opt: MemOption, p_num: int = 1, dim: str = "sample",
) -> TensorConfig:
    """Value-interned :class:`TensorConfig` constructor.

    Candidate generation builds the same few hundred configs hundreds of
    thousands of times per planning run; interning skips the dataclass
    construction and hash precomputation. Used only in incremental mode
    so the reference mode keeps the pre-refactor allocation profile.
    """
    key = (opt, p_num, dim)
    cfg = _CONFIG_INTERN.get(key)
    if cfg is None:
        cfg = TensorConfig(opt=opt, p_num=p_num, dim=dim)
        _CONFIG_INTERN[key] = cfg
    return cfg


class _ProbePlan:
    """Read-only plan overlay used for candidate probes.

    Candidate scoring evaluates thousands of hypothetical plans per
    decision; copying the committed config dict for each would dominate
    the planner. Probes only ever *read* configs, so an overlay with the
    candidate's member configs on top of the committed plan suffices.
    """

    __slots__ = ("_base", "_overrides")

    def __init__(self, base: Plan, overrides: dict[int, TensorConfig]) -> None:
        self._base = base
        self._overrides = overrides

    def config_for(self, tensor_id: int) -> TensorConfig:
        """The override if present, else the committed config."""
        cfg = self._overrides.get(tensor_id)
        return cfg if cfg is not None else self._base.config_for(tensor_id)


class CostModel:
    """ΔM / ΔT evaluation under a concrete plan state.

    The model holds a per-op timeline (execution times under the current
    split factors and op begin times) plus a simulated PCIe occupancy for
    both link directions; these are refreshed via :meth:`refresh` after
    every applied planner decision, so candidate evaluation itself is
    O(1) per candidate (prefix sums).
    """

    def __init__(
        self,
        graph: Graph,
        schedule: list[int],
        profile: ProfileData,
        options: CostModelOptions | None = None,
        *,
        caching: bool = True,
    ) -> None:
        self.graph = graph
        self.schedule = list(schedule)
        self.profile = profile
        self.options = options or CostModelOptions()
        #: Point-evaluation caching (committed windows, probe windows,
        #: recompute-ΔT, exec-split/staging predicates). Disabled by the
        #: planner's ``incremental=False`` reference mode so that mode
        #: reproduces the pre-refactor full-recompute cost profile the
        #: benchmark measures against.
        self.caching = caching
        self.liveness: LivenessInfo = compute_liveness(graph, schedule)
        self._timelines: dict[int, TensorTimeline | None] = {}
        # Filled by refresh():
        self.op_times = np.zeros(len(schedule))
        self.op_begin = np.zeros(len(schedule) + 1)
        self._idle_d2h = np.zeros(len(schedule) + 1)
        self._idle_h2d = np.zeros(len(schedule) + 1)
        # Caches valid for the *committed* plan object last passed to
        # refresh(); probe plans bypass them (identity-checked). They let
        # candidate generation reuse point evaluations across decisions:
        # an incremental refresh(plan, changed=...) invalidates only the
        # entries within the changed tensors' structural dependency
        # radius, a full refresh clears them wholesale.
        self._cached_plan: Plan | None = None
        self._exec_cache: dict[int, tuple[str, int] | None] = {}
        self._break_cache: dict[int, bool] = {}
        #: tensor id -> committed occupancy windows (start, end, bytes).
        self._windows_cache: dict[int, tuple[tuple[int, int, int], ...]] = {}
        #: RECOMPUTE contribution chain deps: tid -> read tids / inverse.
        self._contrib_deps: dict[int, tuple[int, ...]] = {}
        self._contrib_index: dict[int, set[int]] = {}
        #: tensor id -> {probe delta key -> windows}: candidate probes
        #: repeat across decisions (the same split ladder is re-scored at
        #: every bottleneck), so probe-side windows are cached too, keyed
        #: by the probe's (tid, config) delta over the committed plan.
        self._probe_cache: dict[
            int, dict[tuple, tuple[tuple[int, int, int], ...]],
        ] = {}
        self._probe_deps: dict[tuple[int, tuple], tuple[int, ...]] = {}
        self._probe_index: dict[int, set[tuple[int, tuple]]] = {}
        # Recompute-ΔT survives across decisions: entries are invalidated
        # per-tensor through the recorded chain dependencies.
        self._rdt_cache: dict[int, float | PlanningError] = {}
        self._rdt_deps: dict[int, tuple[int, ...]] = {}
        self._rdt_index: dict[int, set[int]] = {}
        # Static structural dependency sets (lazy) and static ΔT values.
        self._op_adjacency: dict[int, frozenset[int]] = {}
        self._break_deps: dict[int, frozenset[int]] = {}
        #: tensor id -> break-predicate positions whose dep set holds it.
        self._break_index: dict[int, set[int]] = {}
        self._pswap_cache: dict[int, float] = {}
        #: Step-1 eligible tensors (static filter), built lazily.
        self._eviction_pool: list | None = None
        #: (bottleneck, entries) — eviction pool narrowed by the static
        #: per-step guards; see :meth:`_nonsplit_pool_at`.
        self._nonsplit_eligible: tuple[int, list] | None = None
        #: Columnar (alloc, free, fwd_end, positions) arrays over the
        #: non-persistent pool entries plus the persistent positions —
        #: the static guards of :meth:`_nonsplit_pool_at`, vectorised.
        self._pool_static: tuple | None = None
        #: (tensor id, config) -> effective split. Pure in its key for a
        #: fixed graph, so it never needs invalidation — valid across
        #: committed plans and probes alike.
        self._esplit_memo: dict[
            tuple[int, TensorConfig], tuple[str, int] | None
        ] = {}
        #: Op id -> (outputs + inputs) tuple, in :func:`op_exec_split`'s
        #: priority order. Graph structure is immutable during planning.
        self._op_tids: dict[int, tuple[int, ...]] = {}
        #: Committed point values at one step: every candidate of a
        #: decision is scored at the same bottleneck, so the plan-side
        #: window sums repeat. Cleared by refresh() and on step change.
        self._point_step: int | None = None
        self._point_cache: dict[int, float] = {}

    # -- timelines ------------------------------------------------------------

    def timeline(self, tensor_id: int) -> TensorTimeline | None:
        """Cached phase-aware timeline of one tensor."""
        if tensor_id not in self._timelines:
            self._timelines[tensor_id] = tensor_timeline(
                self.graph, self.liveness, self.graph.tensors[tensor_id],
            )
        return self._timelines[tensor_id]

    # -- refresh under a plan ----------------------------------------------------

    def refresh(self, plan: Plan, changed: list[int] | None = None) -> None:
        """Recompute op times, begin times and PCIe occupancy for a plan.

        ``changed`` names the tensors whose configs were modified since
        the previous refresh of the *same* plan object: only the ops
        adjacent to them can change execution split factor, so only those
        schedule positions are re-timed (per-tensor invalidation). The
        PCIe occupancy is always re-simulated — transfers queue globally,
        but the simulation is proportional to the number of configured
        tensors, not to the schedule. Without ``changed`` (or for a new
        plan object) everything is rebuilt.
        """
        self._point_step = None
        self._point_cache.clear()
        steps = len(self.schedule)
        if changed is None or self._cached_plan is not plan:
            times = np.empty(steps)
            for idx, op_id in enumerate(self.schedule):
                p_num = self._op_split_factor(plan, op_id)
                times[idx] = self.profile.split_op_time(op_id, p_num)
            self.op_times = times
            self._rdt_cache.clear()
            self._rdt_deps.clear()
            self._rdt_index.clear()
            self._exec_cache.clear()
            self._break_cache.clear()
            self._windows_cache.clear()
            self._contrib_deps.clear()
            self._contrib_index.clear()
            self._probe_cache.clear()
            self._probe_deps.clear()
            self._probe_index.clear()
        else:
            position = self.liveness.position
            ops: set[int] = set()
            for tid in changed:
                tensor = self.graph.tensors[tid]
                if tensor.producer is not None:
                    ops.add(tensor.producer)
                ops.update(tensor.consumers)
            for op_id in ops:
                pos = position.get(op_id)
                if pos is None:
                    continue
                p_num = self._op_split_factor(plan, op_id)
                self.op_times[pos] = self.profile.split_op_time(op_id, p_num)
                self._exec_cache.pop(pos, None)
            for tid in changed:
                self._invalidate_rdt(tid)
                for dependant in list(self._rdt_index.get(tid, ())):
                    self._invalidate_rdt(dependant)
                for pos in self._break_index.get(tid, ()):
                    self._break_cache.pop(pos, None)
                for victim in self._affected_tensors(tid):
                    self._invalidate_contrib(victim)
                for dependant in list(self._contrib_index.get(tid, ())):
                    self._invalidate_contrib(dependant)
                for entry in list(self._probe_index.get(tid, ())):
                    entry_tid, entry_key = entry
                    per_tensor = self._probe_cache.get(entry_tid)
                    if per_tensor is not None:
                        per_tensor.pop(entry_key, None)
                    self._drop_probe_deps(entry)
        begin = np.zeros(steps + 1)
        np.cumsum(self.op_times, out=begin[1:])
        self.op_begin = begin
        self._simulate_pcie(plan)
        self._cached_plan = plan

    def _invalidate_rdt(self, tid: int) -> None:
        self._rdt_cache.pop(tid, None)
        for dep in self._rdt_deps.pop(tid, ()):
            dependants = self._rdt_index.get(dep)
            if dependants is not None:
                dependants.discard(tid)

    def _invalidate_contrib(self, tid: int) -> None:
        self._windows_cache.pop(tid, None)
        for dep in self._contrib_deps.pop(tid, ()):
            dependants = self._contrib_index.get(dep)
            if dependants is not None:
                dependants.discard(tid)
        per_tensor = self._probe_cache.pop(tid, None)
        if per_tensor:
            for key in per_tensor:
                self._drop_probe_deps((tid, key))

    def _drop_probe_deps(self, entry: tuple[int, tuple]) -> None:
        for dep in self._probe_deps.pop(entry, ()):
            entries = self._probe_index.get(dep)
            if entries is not None:
                entries.discard(entry)

    def _affected_tensors(self, tensor_id: int) -> set[int]:
        """Tensors whose point contribution may read ``tensor_id``'s config.

        Mirrors :meth:`repro.core.simulate.MemoryCurve._affected`: the
        tensor itself, every tensor sharing an op with it (exec splits at
        adjacent positions), and every tensor adjacent to a consumer of
        an output of an adjacent op (the whole-staging predicate's
        producer lookback). Chain dependants are tracked separately.
        """
        graph = self.graph
        tensor = graph.tensors[tensor_id]
        first_ops: set[int] = set(tensor.consumers)
        if tensor.producer is not None:
            first_ops.add(tensor.producer)
        ops = set(first_ops)
        for op_id in first_ops:
            for out in graph.ops[op_id].outputs:
                ops.update(graph.tensors[out].consumers)
        tensors: set[int] = {tensor_id}
        for op_id in ops:
            op = graph.ops[op_id]
            tensors.update(op.inputs)
            tensors.update(op.outputs)
        return tensors

    def _op_split_factor(self, plan: Plan, op_id: int) -> int:
        split = op_exec_split(self.graph, plan, self.graph.ops[op_id])
        return split[1] if split else 1

    def _simulate_pcie(self, plan: Plan) -> None:
        """Simulate ideal transfer placement; build idle-time prefix sums.

        Swap-outs queue on the D2H engine starting at the producing op's
        end; swap-ins queue on the H2D engine starting ``prefetch_ops``
        ops before their backward consumer. Each engine is serial. The
        result is, per op interval, how much of the link is already
        occupied (``Oc_u``) — stored as remaining-idle prefix sums.
        """
        steps = len(self.schedule)
        busy_d2h = np.zeros(steps)
        busy_h2d = np.zeros(steps)
        out_requests: list[tuple[float, float]] = []  # (ready_time, duration)
        in_requests: list[tuple[float, float]] = []
        for tid, cfg in plan.configs.items():
            if cfg.opt is not MemOption.SWAP:
                continue
            timeline = self.timeline(tid)
            if timeline is None:
                continue
            tensor = self.graph.tensors[tid]
            duration = self.profile.transfer_time(tensor.size_bytes)
            out_ready = self.op_begin[min(timeline.fwd_end + 1, steps)]
            out_requests.append((out_ready, duration))
            if timeline.bwd_uses:
                start_pos = max(0, timeline.bwd_uses[0] - self.options.prefetch_ops)
                in_requests.append((self.op_begin[start_pos], duration))

        for requests, busy in ((out_requests, busy_d2h), (in_requests, busy_h2d)):
            requests.sort()
            clock = 0.0
            for ready, duration in requests:
                start = max(clock, ready)
                end = start + duration
                clock = end
                self._mark_busy(busy, start, end)

        durations = self.op_times
        idle_d2h = np.maximum(durations - busy_d2h, 0.0)
        idle_h2d = np.maximum(durations - busy_h2d, 0.0)
        self._idle_d2h = np.concatenate(([0.0], np.cumsum(idle_d2h)))
        self._idle_h2d = np.concatenate(([0.0], np.cumsum(idle_h2d)))

    def _mark_busy(self, busy: np.ndarray, start: float, end: float) -> None:
        """Distribute a transfer interval over per-op busy accumulators."""
        begin = self.op_begin
        steps = len(busy)
        lo = int(np.searchsorted(begin, start, side="right") - 1)
        lo = max(0, min(lo, steps - 1))
        pos = lo
        while pos < steps and begin[pos] < end:
            seg_start = max(start, begin[pos])
            seg_end = min(end, begin[pos + 1])
            if seg_end > seg_start:
                busy[pos] += seg_end - seg_start
            pos += 1

    # -- idle-capacity queries ------------------------------------------------

    def idle_d2h(self, lo: int, hi: int) -> float:
        """Idle D2H seconds over op positions [lo, hi] inclusive."""
        lo = max(lo, 0)
        hi = min(hi, len(self.schedule) - 1)
        if hi < lo:
            return 0.0
        return float(self._idle_d2h[hi + 1] - self._idle_d2h[lo])

    def idle_h2d(self, lo: int, hi: int) -> float:
        """Idle H2D seconds over op positions [lo, hi] inclusive."""
        lo = max(lo, 0)
        hi = min(hi, len(self.schedule) - 1)
        if hi < lo:
            return 0.0
        return float(self._idle_h2d[hi + 1] - self._idle_h2d[lo])

    # -- per-strategy ΔT -------------------------------------------------------

    def swap_delta_t(self, tensor: TensorSpec, bottleneck: int) -> float:
        """Equation 3: un-hidable part of swap-out + swap-in transfers."""
        timeline = self.timeline(tensor.tensor_id)
        assert timeline is not None
        transfer = self.profile.transfer_time(tensor.size_bytes)
        out_cost = max(
            transfer - self.idle_d2h(timeline.fwd_end + 1, bottleneck - 1),
            0.0,
        )
        in_cost = 0.0
        if timeline.bwd_uses:
            q = timeline.bwd_uses[0]
            window_lo = max(bottleneck, q - self.options.prefetch_ops)
            in_cost = max(transfer - self.idle_h2d(window_lo, q - 1), 0.0)
        return out_cost + in_cost

    def recompute_delta_t(self, tensor: TensorSpec, plan: Plan) -> float:
        """Equation 4 (reconstructed): profiled chain regeneration time.

        The chain is the one the augmenter will actually emit: swapped
        tensors count as sources (their swap-in cost is charged to their
        own configuration), RESIDE tensors only while still alive at the
        regeneration step. Results for the committed plan are cached per
        tensor and invalidated through the chain's recorded config
        dependencies (see :meth:`refresh`).
        """
        tid = tensor.tensor_id
        committed = self.caching and plan is self._cached_plan
        if committed:
            cached = self._rdt_cache.get(tid)
            if cached is not None:
                if isinstance(cached, PlanningError):
                    raise cached
                return cached
        timeline = self.timeline(tid)
        regen = timeline.bwd_uses[0] if timeline and timeline.bwd_uses else 0
        deps: set[int] | None = set() if committed else None
        try:
            chain = planning_chain(
                self.graph, tid, plan,
                self.liveness.free_step, regen,
                max_len=self.options.max_recompute_chain,
                deps=deps,
            )
        except PlanningError as exc:
            if committed:
                self._record_rdt(tid, exc, deps)
            raise
        value = chain_compute_time(chain, self.profile.op_time)
        if committed:
            self._record_rdt(tid, value, deps)
        return value

    def _record_rdt(
        self, tid: int, value: float | PlanningError, deps: set[int],
    ) -> None:
        deps.discard(tid)
        self._rdt_cache[tid] = value
        self._rdt_deps[tid] = tuple(deps)
        for dep in deps:
            self._rdt_index.setdefault(dep, set()).add(tid)

    def split_delta_t(
        self,
        tensor: TensorSpec,
        cfg: TensorConfig,
        plan: Plan,
        bottleneck: int,
    ) -> float:
        """Equation 6: micro-tensor memory cost + split kernel overheads."""
        timeline = self.timeline(tensor.tensor_id)
        assert timeline is not None
        p_num = cfg.p_num
        producer = tensor.producer

        # (1) micro-tensor swap/recompute cost, overlappable with the
        # split op's own pipelined execution. RESIDE+split (streaming
        # free at the last consumer) moves no bytes at all.
        if cfg.opt is MemOption.RESIDE:
            memory_cost = 0.0
        elif cfg.opt is MemOption.SWAP:
            transfer = self.profile.transfer_time(tensor.size_bytes)
            pipeline = 0.0
            if producer is not None:
                pipeline = (
                    self.profile.split_op_time(producer, p_num)
                    * (p_num - 1) / p_num
                )
            out_cost = max(
                transfer
                - pipeline
                - self.idle_d2h(timeline.fwd_end + 1, bottleneck - 1),
                0.0,
            )
            in_cost = 0.0
            if timeline.bwd_uses:
                q = timeline.bwd_uses[0]
                consumer = self.schedule[q]
                back_pipeline = (
                    self.profile.split_op_time(consumer, p_num)
                    * (p_num - 1) / p_num
                )
                window_lo = max(bottleneck, q - self.options.prefetch_ops)
                in_cost = max(
                    transfer - back_pipeline - self.idle_h2d(window_lo, q - 1),
                    0.0,
                )
            memory_cost = out_cost + in_cost
        else:
            memory_cost = self.recompute_delta_t(tensor, plan)

        # (2) + (3) split/merge copies and kernel degradation.
        overhead = 0.0
        adjacent_ops: set[int] = set()
        if producer is not None:
            adjacent_ops.add(producer)
        adjacent_ops.update(tensor.consumers)
        for op_id in adjacent_ops:
            op = self.graph.ops[op_id]
            if op_supports_split(op.op_type, cfg.dim):
                overhead += self.profile.split_overhead(op_id, p_num)
            else:
                # Consumer/producer cannot run split: materialise a merge
                # (or split) copy of the full tensor.
                overhead += self.profile.memcpy_time(tensor.size_bytes)
        return memory_cost + overhead

    # -- ΔM at the bottleneck ----------------------------------------------------

    def _op_adj(self, op_id: int) -> frozenset[int]:
        """Tensors whose configs decide the op's execution split."""
        adj = self._op_adjacency.get(op_id)
        if adj is None:
            op = self.graph.ops[op_id]
            adj = frozenset(list(op.inputs) + list(op.outputs))
            self._op_adjacency[op_id] = adj
        return adj

    def _break_dep_set(self, pos: int) -> frozenset[int]:
        """Tensors whose configs decide ``needs_whole_staging`` at ``pos``.

        Superset by construction: the op's inputs (own config +
        effective split), plus — for each input with a producer — that
        producer's adjacency (its execution split).
        """
        deps = self._break_deps.get(pos)
        if deps is None:
            op = self.graph.ops[self.schedule[pos]]
            acc: set[int] = set(op.inputs)
            for tid in op.inputs:
                producer = self.graph.tensors[tid].producer
                if producer is not None:
                    acc |= self._op_adj(producer)
            deps = frozenset(acc)
            self._break_deps[pos] = deps
            for tid in deps:
                self._break_index.setdefault(tid, set()).add(pos)
        return deps

    def _esplit(
        self, tensor: TensorSpec, cfg: TensorConfig,
    ) -> tuple[str, int] | None:
        """Memoised :func:`effective_split_config` (incremental mode)."""
        if not cfg.is_split:
            return None
        key = (tensor.tensor_id, cfg)
        try:
            return self._esplit_memo[key]
        except KeyError:
            value = effective_split_config(self.graph, tensor, cfg)
            self._esplit_memo[key] = value
            return value

    def _op_exec_split(self, plan: Plan, op) -> tuple[str, int] | None:
        """:func:`op_exec_split` through the effective-split memo."""
        tensors = self.graph.tensors
        tids = self._op_tids.get(op.op_id)
        if tids is None:
            tids = tuple(op.outputs) + tuple(op.inputs)
            self._op_tids[op.op_id] = tids
        config_for = plan.config_for
        for tid in tids:
            split = self._esplit(tensors[tid], config_for(tid))
            if split is not None and op_supports_split(op.op_type, split[0]):
                return split
        return None

    def _exec_split_at(
        self,
        plan: Plan,
        pos: int,
        changed: frozenset[int] | None = None,
    ) -> tuple[str, int] | None:
        """Execution split of the op at ``pos``, cached for the committed
        plan; probe plans reuse the committed value when ``changed`` is
        disjoint from the op's adjacency."""
        committed = self.caching and plan is self._cached_plan
        if not committed and (
            not self.caching
            or changed is None
            or self._cached_plan is None
            or not changed.isdisjoint(
                self._op_adj(self.schedule[pos]))
        ):
            op = self.graph.ops[self.schedule[pos]]
            if self.caching:
                return self._op_exec_split(plan, op)
            return op_exec_split(self.graph, plan, op)
        cache = self._exec_cache
        if pos not in cache:
            cache[pos] = self._op_exec_split(
                plan, self.graph.ops[self.schedule[pos]],
            )
        return cache[pos]

    def _breaks_at(
        self,
        plan: Plan,
        pos: int,
        changed: frozenset[int] | None = None,
    ) -> bool:
        """Whole-staging predicate at ``pos``, cached like
        :meth:`_exec_split_at` (dependency set: :meth:`_break_dep_set`)."""
        committed = self.caching and plan is self._cached_plan
        if not committed and (
            not self.caching
            or changed is None
            or self._cached_plan is None
            or not changed.isdisjoint(self._break_dep_set(pos))
        ):
            return needs_whole_staging(
                self.graph, plan, self.graph.ops[self.schedule[pos]],
                pos, self.timeline,
            )
        cache = self._break_cache
        if pos not in cache:
            self._break_dep_set(pos)  # register the invalidation index
            cache[pos] = needs_whole_staging(
                self.graph, plan, self.graph.ops[self.schedule[pos]],
                pos, self.timeline,
            )
        return cache[pos]

    def contribution(
        self,
        tensor: TensorSpec,
        plan: Plan,
        step: int,
        changed: frozenset[int] | None = None,
        probe_key: tuple | None = None,
    ) -> float:
        """Bytes ``tensor`` occupies at ``step`` under ``plan``.

        Mirrors :func:`repro.core.simulate._contributions` — including
        the recompute-chain transient and the streaming-region rules —
        evaluated point-wise so candidates can be scored without a full
        curve recomputation. Evaluations against the committed plan are
        cached per (tensor, step) until the next :meth:`refresh`; probe
        evaluations pass ``changed`` (the probe's modified tensor ids) so
        the point predicates can reuse committed results where their
        dependency sets are untouched.
        """
        tid = tensor.tensor_id
        committed = self.caching and plan is self._cached_plan
        cacheable_probe = (
            self.caching and not committed and changed is not None
            and self._cached_plan is not None
        )
        if committed:
            if self._point_step != step:
                self._point_step = step
                self._point_cache.clear()
            else:
                point = self._point_cache.get(tid)
                if point is not None:
                    return point
        windows: tuple[tuple[int, int, int], ...] | None = None
        if committed:
            windows = self._windows_cache.get(tid)
        elif cacheable_probe:
            if probe_key is None:
                probe_key = tuple(
                    (cid, plan.config_for(cid)) for cid in sorted(changed)
                )
            per_tensor = self._probe_cache.get(tid)
            if per_tensor is not None:
                windows = per_tensor.get(probe_key)

        if windows is None:
            timeline = self.timeline(tid)
            if timeline is None:
                if committed:
                    self._point_cache[tid] = 0.0
                return 0.0
            cfg = plan.config_for(tid)
            if cfg.is_split:
                split = (
                    self._esplit(tensor, cfg) if self.caching
                    else effective_split(self.graph, plan, tensor)
                )
                if split is None:
                    cfg = (
                        _intern_config(cfg.opt) if self.caching
                        else TensorConfig(opt=cfg.opt)
                    )
            chain_extra = 0
            deps: set[int] | None = None
            if cfg.opt is MemOption.RECOMPUTE:
                deps = set() if committed or cacheable_probe else None
                chain_extra = recompute_extra(
                    self.graph, plan, self.liveness.free_step, tensor,
                    timeline, deps=deps,
                )
                if deps is not None:
                    deps.discard(tid)
            windows = tuple(_contributions(
                self.graph, tensor, timeline, cfg, len(self.schedule) - 1,
                chain_extra,
                lambda pos: self._exec_split_at(plan, pos, changed),
                lambda pos: self._breaks_at(plan, pos, changed),
            ))
            if committed:
                self._windows_cache[tid] = windows
                if deps:
                    self._contrib_deps[tid] = tuple(deps)
                    for dep in deps:
                        self._contrib_index.setdefault(dep, set()).add(tid)
            elif cacheable_probe:
                self._probe_cache.setdefault(tid, {})[probe_key] = windows
                if deps:
                    entry = (tid, probe_key)
                    self._probe_deps[entry] = tuple(deps)
                    for dep in deps:
                        self._probe_index.setdefault(dep, set()).add(entry)

        total = 0.0
        for start, end, nbytes in windows:
            if start <= step <= end:
                total += nbytes
        if committed:
            self._point_cache[tid] = total
        return total

    def group_delta_m(
        self,
        members: list[tuple[TensorSpec, TensorConfig]],
        plan: Plan,
        probe: Plan,
        step: int,
    ) -> float:
        """Memory reduction at ``step`` from applying a config group.

        ``probe`` must already contain the group's configs. Includes the
        workspace shrink of the op executing at ``step``.
        """
        changed = frozenset(tensor.tensor_id for tensor, _ in members)
        probe_key = tuple(
            (cid, probe.config_for(cid)) for cid in sorted(changed)
        ) if self.caching else None
        reduction = 0.0
        contribution = self.contribution
        for tensor, _ in members:
            reduction += contribution(tensor, plan, step)
            reduction -= contribution(
                tensor, probe, step, changed=changed, probe_key=probe_key,
            )
        op = self.graph.ops[self.schedule[step]]
        if op.workspace_bytes:
            old_split = self._exec_split_at(plan, step)
            new_split = self._exec_split_at(probe, step, changed=changed)
            old_p = old_split[1] if old_split else 1
            new_p = new_split[1] if new_split else 1
            reduction += op.workspace_bytes * (1 / old_p - 1 / new_p)
        return reduction

    # -- candidate generation -------------------------------------------------

    def _eviction_candidates(self):
        """Yield Step-1-eligible tensors: the size, kind and lifetime
        guards depend only on the graph, never on the plan or the
        bottleneck, so incremental mode materialises this once
        (``_eviction_pool``) instead of re-filtering every tensor on
        every decision."""
        persistent_kinds = (
            TensorKind.PARAM, TensorKind.OPTIMIZER_STATE,
            TensorKind.GRAD_PARAM,
        )
        for tensor in self.graph.tensors.values():
            if tensor.size_bytes < self.options.min_evict_bytes:
                continue
            persistent = tensor.kind in persistent_kinds
            if not persistent and tensor.kind is not TensorKind.ACTIVATION:
                continue
            timeline = self.timeline(tensor.tensor_id)
            if timeline is None:
                continue
            yield tensor, timeline, persistent

    def _probe(
        self, plan: Plan, overrides: dict[int, TensorConfig],
    ) -> Plan | _ProbePlan:
        """Hypothetical plan for scoring one candidate.

        Incremental mode layers the candidate's configs over the
        committed plan without copying; the ``caching=False`` reference
        mode keeps the pre-refactor full-copy probes so the planner
        benchmark's baseline reflects the implementation this replaced.
        """
        if self.caching:
            return _ProbePlan(plan, overrides)
        probe = plan.copy()
        for tid, cfg in overrides.items():
            probe.set(tid, cfg)
        return probe

    def persistent_swap_delta_t(self, tensor: TensorSpec) -> float:
        """ΔT of sharding a parameter / optimizer-state tensor to host.

        Conservative: one swap-in + swap-out round trip per use window,
        with no overlap credit — the planner should only reach for
        persistent tensors once activations are exhausted (which is when
        the paper's parameter-scale experiments need it).
        """
        tid = tensor.tensor_id
        cached = self._pswap_cache.get(tid) if self.caching else None
        if cached is not None:
            return cached
        timeline = self.timeline(tid)
        if timeline is None:
            return 0.0
        transfer = self.profile.transfer_time(tensor.size_bytes)
        windows = max(1, len(timeline.use_positions))
        value = 2.0 * windows * transfer
        self._pswap_cache[tid] = value
        return value

    def _nonsplit_pool_at(self, bottleneck: int) -> list:
        """Step-1 victims whose *static* guards pass at ``bottleneck``.

        The exclusion set, persistent-use coverage and activation
        lifetime-window checks depend only on the graph and the
        bottleneck step — never on the plan — and a bottleneck persists
        across many consecutive decisions, so incremental mode filters
        the eviction pool once per bottleneck step instead of once per
        decision. Entries are (tensor, timeline, persistent) in graph
        order (candidate order must match the reference loop exactly).
        """
        cached = self._nonsplit_eligible
        if cached is not None and cached[0] == bottleneck:
            return cached[1]
        current_op = self.graph.ops[self.schedule[bottleneck]]
        excluded = set(current_op.inputs) | set(current_op.outputs)
        if self._eviction_pool is None:
            self._eviction_pool = list(self._eviction_candidates())
        pool = self._eviction_pool
        if self._pool_static is None:
            nonp = [i for i, entry in enumerate(pool) if not entry[2]]
            self._pool_static = (
                np.fromiter(
                    (pool[i][1].alloc for i in nonp), np.int64, len(nonp),
                ),
                np.fromiter(
                    (pool[i][1].free for i in nonp), np.int64, len(nonp),
                ),
                np.fromiter(
                    (pool[i][1].fwd_end for i in nonp), np.int64, len(nonp),
                ),
                np.asarray(nonp, dtype=np.intp),
                [i for i, entry in enumerate(pool) if entry[2]],
            )
        alloc, free, fwd_end, nonp_pos, pers_pos = self._pool_static
        # Activation lifetime windows, all entries at once.
        keep = nonp_pos[
            (alloc < bottleneck) & (free > bottleneck)
            & (fwd_end < bottleneck)
        ].tolist()
        if self.options.allow_swap:
            for i in pers_pos:
                tensor, timeline, _ = pool[i]
                covered = any(
                    use - 1 <= bottleneck <= use
                    for use in timeline.use_positions
                )
                if tensor.kind is TensorKind.GRAD_PARAM:
                    covered = covered or timeline.alloc == bottleneck
                if not covered:
                    keep.append(i)
            keep.sort()
        eligible = [
            pool[i] for i in keep
            if pool[i][0].tensor_id not in excluded
        ]
        self._nonsplit_eligible = (bottleneck, eligible)
        return eligible

    def nonsplit_candidates(
        self, bottleneck: int, plan: Plan,
    ) -> list[Candidate]:
        """Step 1 of Algorithm 2: swap/recompute for live resident tensors."""
        if self.caching:
            return self._nonsplit_candidates_pooled(bottleneck, plan)
        current_op = self.graph.ops[self.schedule[bottleneck]]
        excluded = set(current_op.inputs) | set(current_op.outputs)
        candidates: list[Candidate] = []
        make_cfg = TensorConfig
        configs = plan.configs
        reside = MemOption.RESIDE
        for tensor, timeline, persistent in self._eviction_candidates():
            tid = tensor.tensor_id
            if tid in excluded:
                continue
            cfg = configs.get(tid, RESIDE)
            if cfg.opt is not reside:
                continue  # already evicted; upgrades happen via split path
            if persistent:
                # Shard to host memory, resident only around uses —
                # how parameter-dominated workloads keep scaling after
                # every activation is already evicted. Includes
                # ZeRO-style gradient offload: a parameter gradient is
                # streamed out at production and back for the update.
                # ΔM in closed form (mirrors the persistent-SWAP window
                # rule of the static model): full size unless a use
                # window covers the bottleneck.
                if not self.options.allow_swap:
                    continue
                covered = any(
                    use - 1 <= bottleneck <= use
                    for use in timeline.use_positions
                )
                if tensor.kind is TensorKind.GRAD_PARAM:
                    covered = covered or timeline.alloc == bottleneck
                if covered:
                    continue
                new_cfg = make_cfg(opt=MemOption.SWAP)
                candidates.append(Candidate(
                    ((tid, new_cfg),), float(tensor.size_bytes),
                    self.persistent_swap_delta_t(tensor),
                    prior=((tid, cfg),),
                ))
                continue
            if timeline.alloc >= bottleneck:
                continue
            if timeline.free <= bottleneck:
                continue  # about to be freed anyway
            if timeline.fwd_end >= bottleneck:
                continue  # still needed in the forward region around here
            for option in (MemOption.SWAP, MemOption.RECOMPUTE):
                if option is MemOption.SWAP and not self.options.allow_swap:
                    continue
                if (
                    option is MemOption.RECOMPUTE
                    and not self.options.allow_recompute
                ):
                    continue
                new_cfg = make_cfg(opt=option, p_num=cfg.p_num, dim=cfg.dim)
                probe = self._probe(plan, {tid: new_cfg})
                dm = self.group_delta_m(
                    [(tensor, new_cfg)], plan, probe, bottleneck,
                )
                if dm <= 0:
                    continue
                try:
                    dt = (
                        self.swap_delta_t(tensor, bottleneck)
                        if option is MemOption.SWAP
                        else self.recompute_delta_t(tensor, plan)
                    )
                except PlanningError:
                    continue
                candidates.append(Candidate(
                    ((tid, new_cfg),), dm, dt,
                    prior=((tid, cfg),),
                ))
        return candidates

    def _nonsplit_candidates_pooled(
        self, bottleneck: int, plan: Plan,
    ) -> list[Candidate]:
        """Incremental-mode Step 1: same candidates as
        :meth:`nonsplit_candidates`, enumerated from the per-bottleneck
        static pool so only the plan-dependent guards run per decision."""
        candidates: list[Candidate] = []
        configs = plan.configs
        reside = MemOption.RESIDE
        swap_cfg = _intern_config(MemOption.SWAP)
        option_order = [
            option for option, allowed in (
                (MemOption.SWAP, self.options.allow_swap),
                (MemOption.RECOMPUTE, self.options.allow_recompute),
            ) if allowed
        ]
        for tensor, timeline, persistent in self._nonsplit_pool_at(bottleneck):
            tid = tensor.tensor_id
            cfg = configs.get(tid, RESIDE)
            if cfg.opt is not reside:
                continue  # already evicted; upgrades happen via split path
            if persistent:
                candidates.append(Candidate(
                    ((tid, swap_cfg),), float(tensor.size_bytes),
                    self.persistent_swap_delta_t(tensor),
                    prior=((tid, cfg),),
                ))
                continue
            for option in option_order:
                new_cfg = _intern_config(option, cfg.p_num, cfg.dim)
                probe = _ProbePlan(plan, {tid: new_cfg})
                dm = self.group_delta_m(
                    [(tensor, new_cfg)], plan, probe, bottleneck,
                )
                if dm <= 0:
                    continue
                try:
                    dt = (
                        self.swap_delta_t(tensor, bottleneck)
                        if option is MemOption.SWAP
                        else self.recompute_delta_t(tensor, plan)
                    )
                except PlanningError:
                    continue
                candidates.append(Candidate(
                    ((tid, new_cfg),), dm, dt,
                    prior=((tid, cfg),),
                ))
        return candidates

    def split_candidates(
        self, bottleneck: int, plan: Plan,
    ) -> list[Candidate]:
        """Step 2 of Algorithm 2: split the bottleneck op's tensors.

        Splitting an operation splits its tensors *together*: a group
        candidate aligns every eligible input/output of the bottleneck op
        to one (dim, p_num), which is what lets the augmenter form a
        coherent streaming region (mismatched part counts would force
        merges and destroy the reuse the split is meant to buy).
        """
        if not self.options.allow_split:
            return []
        current_op = self.graph.ops[self.schedule[bottleneck]]
        candidates: list[Candidate] = []
        # One-hop window: include the chained neighbour ops so their
        # shared tensors land in the same group and the streaming region
        # extends across them with one coherent (dim, p_num).
        window_ops = [current_op]
        if bottleneck + 1 < len(self.schedule):
            nxt = self.graph.ops[self.schedule[bottleneck + 1]]
            if set(nxt.inputs) & set(current_op.outputs):
                window_ops.append(nxt)
        if bottleneck - 1 >= 0:
            prv = self.graph.ops[self.schedule[bottleneck - 1]]
            if set(prv.outputs) & set(current_op.inputs):
                window_ops.append(prv)
        eligible_map: dict[int, TensorSpec] = {}
        for op in window_ops:
            for tensor in self._split_eligible(op, plan):
                eligible_map[tensor.tensor_id] = tensor
        eligible = list(eligible_map.values())
        if not eligible:
            return []
        touching: dict[int, list] = {
            t.tensor_id: [
                op for op in window_ops
                if t.tensor_id in op.inputs or t.tensor_id in op.outputs
            ]
            for t in eligible
        }
        for dim in (DIM_SAMPLE, DIM_PARAMETER, DIM_ATTRIBUTE):
            if not op_supports_split(current_op.op_type, dim):
                continue
            group_base = [
                t for t in eligible
                if dim in t.split_axes
                and op_supports_split(
                    self.graph.ops[t.producer].op_type, dim,
                )
                and all(
                    op_supports_split(op.op_type, dim)
                    for op in touching[t.tensor_id]
                )
            ]
            if not group_base:
                continue
            evict_options: list[MemOption] = []
            if self.options.allow_swap:
                evict_options.append(MemOption.SWAP)
            if self.options.allow_recompute:
                evict_options.append(MemOption.RECOMPUTE)
            if not evict_options:
                evict_options = [MemOption.RESIDE]
            for p_num in self.options.split_p_nums:
                if all(
                    tensor.shape[tensor.split_axes[dim]] < p_num
                    for tensor in group_base
                ):
                    break
                for evict_opt in evict_options:
                    members: list[tuple[TensorSpec, TensorConfig]] = []
                    changed = False
                    for tensor in group_base:
                        axis = tensor.split_axes[dim]
                        if tensor.shape[axis] < p_num:
                            continue
                        cfg = self._member_config(
                            tensor, plan, dim, p_num, evict_opt,
                        )
                        if cfg is None:
                            continue
                        members.append((tensor, cfg))
                        if plan.config_for(tensor.tensor_id) != cfg:
                            changed = True
                    if not members or not changed:
                        continue
                    probe = self._probe(plan, {
                        tensor.tensor_id: cfg for tensor, cfg in members
                    })
                    dm = self.group_delta_m(members, plan, probe, bottleneck)
                    if dm <= 0:
                        continue
                    dt = 0.0
                    try:
                        for tensor, cfg in members:
                            dt += self.split_delta_t(
                                tensor, cfg, plan, bottleneck,
                            )
                    except PlanningError:
                        continue
                    candidates.append(Candidate(
                        tuple(
                            (tensor.tensor_id, cfg)
                            for tensor, cfg in members
                        ),
                        dm, dt,
                        prior=tuple(
                            (tensor.tensor_id,
                             plan.config_for(tensor.tensor_id))
                            for tensor, _ in members
                        ),
                    ))
        return candidates

    def regen_candidates(
        self, bottleneck: int, plan: Plan,
    ) -> list[Candidate]:
        """Split upgrades for evicted tensors whose regeneration window
        covers the bottleneck.

        A whole-tensor swap is prefetched a few ops early and occupies
        full size from the prefetch point; upgrading it to swap+split
        streams the pieces just-in-time inside its backward consumer and
        shrinks the window to the streaming depth.
        """
        if not self.options.allow_split or not self.options.allow_swap:
            return []
        candidates: list[Candidate] = []
        current_op = self.graph.ops[self.schedule[bottleneck]]
        local = set(current_op.inputs) | set(current_op.outputs)
        for tensor in self.graph.tensors.values():
            tid = tensor.tensor_id
            if tid in local:
                continue
            if tensor.kind is not TensorKind.ACTIVATION:
                continue
            old_cfg = plan.config_for(tid)
            if old_cfg.opt is not MemOption.SWAP:
                continue
            # Already-split tensors stay eligible: re-splitting to the
            # consumer's part count repairs a mismatched alignment that
            # would otherwise force whole-tensor regeneration.
            if tensor.size_bytes < self.options.min_split_bytes:
                continue
            timeline = self.timeline(tid)
            if timeline is None or not timeline.bwd_uses:
                continue
            first_bwd = timeline.bwd_uses[0]
            if not (first_bwd - self.options.prefetch_ops
                    <= bottleneck <= timeline.free):
                continue
            consumer = self.graph.ops[self.schedule[first_bwd]]
            producer = tensor.producer
            if producer is None:
                continue
            # Part counts worth trying: the backward consumer's and every
            # forward consumer's established split (streaming requires
            # agreement with all of them), then the generic ladder.
            exec_ps: list[int] = []
            for use in (first_bwd, *(
                p for p in timeline.use_positions if p <= timeline.fwd_end
            )):
                use_exec = op_exec_split(
                    self.graph, plan, self.graph.ops[self.schedule[use]],
                )
                if use_exec is not None and use_exec[1] not in exec_ps:
                    exec_ps.append(use_exec[1])
            for dim, axis in tensor.split_axes.items():
                if not op_supports_split(consumer.op_type, dim):
                    continue
                if not op_supports_split(
                    self.graph.ops[producer].op_type, dim,
                ):
                    continue
                p_choices: tuple[int, ...] = tuple(
                    dict.fromkeys((*exec_ps, *self.options.split_p_nums)),
                )
                for p_num in p_choices:
                    if p_num > tensor.shape[axis]:
                        continue
                    new_cfg = TensorConfig(
                        opt=MemOption.SWAP, p_num=p_num, dim=dim,
                    )
                    if new_cfg == old_cfg:
                        continue
                    probe = self._probe(plan, {tid: new_cfg})
                    dm = self.group_delta_m(
                        [(tensor, new_cfg)], plan, probe, bottleneck,
                    )
                    if dm <= 0:
                        continue
                    try:
                        dt = self.split_delta_t(
                            tensor, new_cfg, plan, bottleneck,
                        )
                    except PlanningError:
                        continue
                    candidates.append(Candidate(
                        ((tid, new_cfg),), dm, dt,
                        prior=((tid, old_cfg),),
                    ))
        return candidates

    def _split_eligible(
        self, op, plan: Plan,
    ) -> list[TensorSpec]:
        """Tensors of an op that may participate in a split group."""
        eligible: list[TensorSpec] = []
        for tid in dict.fromkeys(list(op.inputs) + list(op.outputs)):
            tensor = self.graph.tensors[tid]
            if tensor.kind not in (
                TensorKind.ACTIVATION, TensorKind.GRAD_ACTIVATION,
            ):
                continue
            if tensor.size_bytes < self.options.min_split_bytes:
                continue
            if tensor.producer is None:
                continue
            eligible.append(tensor)
        return eligible

    def _member_config(
        self,
        tensor: TensorSpec,
        plan: Plan,
        dim: str,
        p_num: int,
        evict_opt: MemOption,
    ) -> TensorConfig | None:
        """Config a tensor gets inside a split group, or None to skip.

        Gradients stream in place (RESIDE); short-lived forward tensors
        free as they are consumed; long-lived activations are evicted
        micro-wise with ``evict_opt`` (the group generator proposes both
        a swap-preferring and a recompute-preferring variant and lets the
        ΔT/ΔM comparison decide).
        """
        if tensor.kind is TensorKind.GRAD_ACTIVATION:
            return TensorConfig(opt=MemOption.RESIDE, p_num=p_num, dim=dim)
        timeline = self.timeline(tensor.tensor_id)
        if timeline is None:
            return None
        if not timeline.bwd_uses and timeline.free <= timeline.alloc + 1:
            # Short-lived forward tensor: streaming free, no eviction.
            return TensorConfig(opt=MemOption.RESIDE, p_num=p_num, dim=dim)
        if evict_opt is MemOption.RESIDE:
            return None
        return TensorConfig(opt=evict_opt, p_num=p_num, dim=dim)
