"""Profiling-based estimation (Section V-B).

Before planning, TSPLIT profiles every operator of the graph while
monopolising the hardware: computation kernels are timed with CUDA
events, and swap transfers are derived from ``size / bandwidth`` at full
PCIe utilisation. Here the "hardware" is the analytic kernel model, with
optional multiplicative measurement noise (deterministic, seeded) that is
averaged away over ``samples`` repetitions — mirroring how the real
profiler exploits the low-variance, data-independent execution times of
DNN operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProfilingError
from repro.graph.graph import Graph
from repro.graph.ops import ComputeClass, Operator
from repro.hardware.gpu import GPUSpec
from repro.hardware.kernels import KernelModel
from repro.hardware.pcie import PCIeModel


@dataclass
class ProfileData:
    """Per-operator timing data for one (graph, GPU) pair.

    ``op_times`` holds profiled execution times of unsplit operators;
    split execution times are estimated on demand through the kernel
    model and cached (profiling every (op, p_num) pair on hardware would
    be quadratic; the paper profiles split kernels for candidate part
    counts the same way).
    """

    gpu: GPUSpec
    op_times: dict[int, float]
    kernel_model: KernelModel
    pcie: PCIeModel
    _split_cache: dict[tuple[int, int], float] = field(default_factory=dict)
    _ops: dict[int, Operator] = field(default_factory=dict)

    def op_time(self, op_id: int) -> float:
        """Profiled execution time of an (unsplit) operator."""
        try:
            return self.op_times[op_id]
        except KeyError:
            raise ProfilingError(f"op {op_id} was not profiled") from None

    def split_op_time(self, op_id: int, p_num: int) -> float:
        """Execution time of op ``op_id`` run as ``p_num`` micro-kernels."""
        if p_num <= 1:
            return self.op_time(op_id)
        key = (op_id, p_num)
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached
        op = self._ops.get(op_id)
        if op is None:
            raise ProfilingError(f"op {op_id} was not profiled")
        base = self.op_time(op_id)
        overhead = self.kernel_model.split_overhead(op, p_num)
        time = base + overhead
        self._split_cache[key] = time
        return time

    def split_overhead(self, op_id: int, p_num: int) -> float:
        """Extra kernel time incurred by running the op split p_num ways."""
        return self.split_op_time(op_id, p_num) - self.op_time(op_id)

    def transfer_time(self, nbytes: int) -> float:
        """One-direction PCIe transfer time of ``nbytes``."""
        return self.pcie.transfer_time(nbytes)

    def memcpy_time(self, nbytes: int) -> float:
        """Device-to-device copy (physical split/merge materialisation)."""
        return self.kernel_model.memcpy_time(nbytes)

    @property
    def bandwidth(self) -> float:
        """The ``B`` of Equation 3."""
        return self.pcie.bandwidth()

    def total_compute_time(self, schedule: list[int]) -> float:
        """Sum of profiled times over a schedule (the baseline ``T``)."""
        return sum(self.op_times.get(op_id, 0.0) for op_id in schedule)


class Profiler:
    """Profiles a graph's operators on a (simulated) GPU.

    Parameters
    ----------
    gpu:
        Target device.
    noise_sigma:
        Relative standard deviation of each simulated measurement; 0
        disables noise entirely.
    samples:
        Measurements per operator; the mean is recorded.
    seed:
        RNG seed for reproducible noise.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        *,
        noise_sigma: float = 0.0,
        samples: int = 3,
        seed: int = 0,
    ) -> None:
        if noise_sigma < 0:
            raise ProfilingError(f"negative noise sigma {noise_sigma}")
        if samples < 1:
            raise ProfilingError(f"samples must be >= 1, got {samples}")
        self.gpu = gpu
        self.noise_sigma = noise_sigma
        self.samples = samples
        self.seed = seed
        self.kernel_model = KernelModel(gpu)
        self.pcie = PCIeModel(gpu)

    def cache_token(self) -> dict:
        """JSON-able identity of the profiler's measurement settings.

        Everything that can change the produced :class:`ProfileData`
        besides the graph and the GPU spec (those are fingerprinted
        separately by the compilation cache).
        """
        return {
            "noise_sigma": self.noise_sigma,
            "samples": self.samples,
            "seed": self.seed,
        }

    def profile(self, graph: Graph) -> ProfileData:
        """Measure every non-transfer operator of the graph."""
        rng = np.random.default_rng(self.seed)
        op_times: dict[int, float] = {}
        ops: dict[int, Operator] = {}
        for op in graph.ops.values():
            if op.op_type.compute_class is ComputeClass.TRANSFER:
                continue
            true_time = self.kernel_model.op_time(op)
            if self.noise_sigma > 0 and true_time > 0:
                factors = rng.normal(1.0, self.noise_sigma, size=self.samples)
                measured = float(np.mean(np.abs(factors))) * true_time
            else:
                measured = true_time
            op_times[op.op_id] = measured
            ops[op.op_id] = op
        return ProfileData(
            gpu=self.gpu,
            op_times=op_times,
            kernel_model=self.kernel_model,
            pcie=self.pcie,
            _ops=ops,
        )
