"""Augmented sTensor-graph generation (Figure 10).

Lowers a (graph, plan) pair into the linear instruction
:class:`~repro.runtime.instructions.Program` the runtime engine
executes. The lowering inserts, per the paper:

* split execution of operators whose tensors carry a split config
  (micro-kernels interleaved with micro-tensor evictions),
* merge operators where a consumer cannot execute split,
* swap-out / swap-in operators with prefetch placement,
* recompute chains at backward consumers, per the configured
  recomputation strategy (memory-centric / speed-centric / LRU hybrid,
  Section V-D),
* host-side optimizer updates + parameter write-back for the
  ZeRO-Offload-style plans,
* ordinary allocation/free bookkeeping derived from liveness.

The emission order of instructions encodes the control-flow edges of the
augmented graph: the engine issues them in order, with data dependencies
resolved through tensor ready-events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_model import op_supports_split
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.profiler import ProfileData
from repro.core.recompute import RecomputeStrategy, recompute_chain
from repro.core.simulate import PREFETCH_OPS
from repro.core.stensor import STensor
from repro.errors import RuntimeExecutionError
from repro.graph.graph import Graph
from repro.graph.liveness import PERSISTENT_KINDS, compute_liveness
from repro.graph.ops import Operator, Phase
from repro.graph.tensor import TensorSpec
from repro.core.simulate import TensorTimeline, tensor_timeline
from repro.runtime.instructions import (
    ComputeInstr,
    Device,
    FreeInstr,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
    WHOLE,
    XferInstr,
)
from repro.units import TFLOPS

#: micro_index marker for the zero-byte "parameter updated" event ref.
UPDATED_MARKER = -2


@dataclass(frozen=True)
class AugmentOptions:
    """Lowering knobs."""

    prefetch_ops: int = PREFETCH_OPS
    recompute_strategy: RecomputeStrategy = RecomputeStrategy.MEMORY_CENTRIC
    #: Regenerated-intermediate cache budget for the LRU strategy.
    lru_budget_bytes: int = 512 * 1024 * 1024
    #: Host FP32 throughput for CPU-offloaded optimizer updates.
    host_flops: float = 0.4 * TFLOPS
    max_recompute_chain: int = 256


@dataclass
class _TensorState:
    """Augmentation-time location tracking of one tensor."""

    location: str = "unborn"  # unborn | gpu | host | freed | cpu
    split: tuple[str, int] | None = None  # (dim, p_num) of GPU-resident form
    regen: bool = False  # currently resident due to recomputation
    host_copy: bool = False  # a swapped-out copy exists in host memory


@dataclass
class AugmentedProgram:
    """The lowered program plus the structures used to build it."""

    program: Program
    plan: Plan
    schedule: list[int]
    #: tensor id -> effective split applied ((dim, p_num)), for reports.
    applied_splits: dict[int, tuple[str, int]] = field(default_factory=dict)


class _Augmenter:
    def __init__(
        self,
        graph: Graph,
        plan: Plan,
        schedule: list[int],
        profile: ProfileData,
        options: AugmentOptions,
    ) -> None:
        self.graph = graph
        self.plan = plan
        self.schedule = schedule
        self.profile = profile
        self.options = options
        self.liveness = compute_liveness(graph, schedule)
        self.program = Program(name=graph.name)
        self.state: dict[int, _TensorState] = {}
        self.timelines: dict[int, TensorTimeline | None] = {}
        self.applied_splits: dict[int, tuple[str, int]] = {}
        self.lru_order: list[int] = []  # regen tensors, least recent first
        # pos -> tensor ids whose swap-in prefetch is issued there
        self.prefetch_at: dict[int, list[int]] = {}

    # -- helpers --------------------------------------------------------------

    def timeline(self, tensor_id: int) -> TensorTimeline | None:
        """Cached phase-aware timeline of one tensor."""
        if tensor_id not in self.timelines:
            self.timelines[tensor_id] = tensor_timeline(
                self.graph, self.liveness, self.graph.tensors[tensor_id],
            )
        return self.timelines[tensor_id]

    def cfg(self, tensor_id: int) -> TensorConfig:
        return self.plan.config_for(tensor_id)

    def effective_split(self, tensor: TensorSpec) -> tuple[str, int] | None:
        """Split actually applied: requires producer kernel support."""
        cfg = self.cfg(tensor.tensor_id)
        if not cfg.is_split:
            return None
        if cfg.dim not in tensor.split_axes:
            return None
        producer = tensor.producer
        if producer is None:
            return None
        if not op_supports_split(self.graph.ops[producer].op_type, cfg.dim):
            return None
        axis = tensor.split_axes[cfg.dim]
        if tensor.shape[axis] < cfg.p_num:
            return None
        return (cfg.dim, cfg.p_num)

    def refs(self, tensor: TensorSpec) -> list[TensorRef]:
        """Current GPU refs of a tensor (micro refs if split-resident)."""
        state = self.state.get(tensor.tensor_id)
        split = state.split if state else None
        if split is None:
            return [TensorRef(tensor.tensor_id, tensor.size_bytes,
                              label=tensor.name)]
        dim, p_num = split
        stensor = STensor(tensor)
        micros = stensor.split(dim, p_num)
        return [
            TensorRef(tensor.tensor_id, m.nbytes, m.index,
                      label=f"{tensor.name}[{m.index}/{p_num}]")
            for m in micros
        ]

    def whole_ref(self, tensor: TensorSpec) -> TensorRef:
        return TensorRef(tensor.tensor_id, tensor.size_bytes, WHOLE,
                         label=tensor.name)

    def is_persistent_reside(self, tensor: TensorSpec) -> bool:
        return (
            tensor.kind in PERSISTENT_KINDS
            and self.cfg(tensor.tensor_id).opt is MemOption.RESIDE
        )

    def tracked(self, tensor: TensorSpec) -> bool:
        """Whether the engine tracks this tensor's residency at all."""
        if self.cfg(tensor.tensor_id).opt is MemOption.CPU:
            return False
        return not self.is_persistent_reside(tensor)

    # -- main walk --------------------------------------------------------------

    def run(self) -> AugmentedProgram:
        """Walk the schedule and emit the full instruction program."""
        self._init_states()
        self._build_prefetch_map()
        pos = 0
        while pos < len(self.schedule):
            op = self.graph.ops[self.schedule[pos]]
            device = (
                Device.CPU
                if self.plan.cpu_update and op.phase is Phase.UPDATE
                else Device.GPU
            )
            exec_split = (
                self._op_exec_split(op) if device is Device.GPU else None
            )
            if exec_split is None:
                self._issue_prefetches(pos)
                self._materialize_inputs(op, pos)
                self._emit_whole_op(pos, op, device)
                self._post_op(pos, op)
                pos += 1
                continue
            # Streaming region: a maximal run of consecutive ops sharing
            # this split, chained through split tensors. Their
            # micro-kernels are emitted interleaved (software-pipelined),
            # so a produced micro-tensor is consumed — and evicted — before
            # the next one materialises. This is what makes adjacent
            # split producer/consumer pairs reuse memory (Section III-A).
            positions = self._region_positions(pos, exec_split)
            for q in positions:
                self._issue_prefetches(q)
            self._emit_split_region(positions, exec_split)
            pos += len(positions)
        return AugmentedProgram(
            program=self.program,
            plan=self.plan,
            schedule=self.schedule,
            applied_splits=self.applied_splits,
        )

    def _init_states(self) -> None:
        persistent = 0
        for tensor in self.graph.tensors.values():
            cfg = self.cfg(tensor.tensor_id)
            state = _TensorState()
            if cfg.opt is MemOption.CPU:
                state.location = "cpu"
            elif tensor.kind in PERSISTENT_KINDS:
                if cfg.opt is MemOption.SWAP:
                    state.location = "host"  # sharded weights start on host
                    self.program.initial_host.append(self.whole_ref(tensor))
                else:
                    state.location = "gpu"
                    persistent += tensor.size_bytes
            self.state[tensor.tensor_id] = state
        self.program.persistent_bytes = persistent
        self.program.batch = _graph_batch(self.graph)

    def _build_prefetch_map(self) -> None:
        for tensor in self.graph.tensors.values():
            cfg = self.cfg(tensor.tensor_id)
            if cfg.opt is not MemOption.SWAP:
                continue
            timeline = self.timeline(tensor.tensor_id)
            if timeline is None:
                continue
            if tensor.kind in PERSISTENT_KINDS:
                # Sharded parameter: swap in one op before every use
                # (except uses by CPU-device ops).
                for use in timeline.use_positions:
                    if self._consumer_on_cpu(use):
                        continue
                    self.prefetch_at.setdefault(max(0, use - 1), []).append(
                        tensor.tensor_id,
                    )
                continue
            if not timeline.bwd_uses:
                continue
            first_bwd = timeline.bwd_uses[0]
            if self._consumer_on_cpu(first_bwd):
                continue
            split = self.effective_split(tensor)
            if split is not None:
                consumer = self.graph.ops[self.schedule[first_bwd]]
                if op_supports_split(consumer.op_type, split[0]):
                    # Micro pieces stream just-in-time inside the
                    # consumer's split region; no bulk prefetch.
                    continue
            pos = max(
                timeline.fwd_end + 1, first_bwd - self.options.prefetch_ops,
            )
            self.prefetch_at.setdefault(pos, []).append(tensor.tensor_id)

    def _consumer_on_cpu(self, pos: int) -> bool:
        op = self.graph.ops[self.schedule[pos]]
        return self.plan.cpu_update and op.phase is Phase.UPDATE

    def _issue_prefetches(self, pos: int) -> None:
        for tid in self.prefetch_at.get(pos, ()):
            tensor = self.graph.tensors[tid]
            state = self.state[tid]
            if state.location != "host":
                continue  # already resident (e.g. adjacent param uses)
            for ref in self.refs(tensor):
                self.program.append(SwapInInstr(ref))
            state.location = "gpu"

    # -- input materialisation ---------------------------------------------------

    def _materialize_inputs(
        self, op: Operator, pos: int, skip: set[int] | None = None,
    ) -> None:
        if self.plan.cpu_update and op.phase is Phase.UPDATE:
            # CPU-offloaded updates read host copies; nothing to stage.
            return
        exec_split = self._op_exec_split(op)
        for tid in op.inputs:
            if skip and tid in skip:
                continue  # produced inside the streaming region itself
            tensor = self.graph.tensors[tid]
            if not self.tracked(tensor):
                continue
            state = self.state[tid]
            if state.location == "host":
                if state.split is not None and state.split == exec_split:
                    continue  # streamed in micro-wise inside the region
                # Missed prefetch (late eviction) — demand swap-in.
                for ref in self.refs(tensor):
                    self.program.append(SwapInInstr(ref))
                state.location = "gpu"
            elif state.location == "freed":
                self._emit_recompute(tensor, keep=set(op.inputs), pos=pos)
            elif state.location == "unborn":
                raise RuntimeExecutionError(
                    f"op {op.name!r} consumes unborn tensor {tensor.name!r}"
                )
            # Merge if resident split but this op can't use that split.
            if state.split is not None and (
                exec_split is None or exec_split != state.split
            ):
                self._emit_merge(tensor)

    def _emit_merge(self, tensor: TensorSpec) -> None:
        """Materialise the whole tensor from its resident micro pieces.

        Section V-C: when the merge need not happen physically — the
        pieces never left the device since production, so the pool holds
        them contiguously — it is performed *in place* (pointer
        arithmetic, zero copy time). Pieces that were re-materialised by
        swap-ins or recomputation land at arbitrary pool addresses and
        pay a real device copy.
        """
        state = self.state[tensor.tensor_id]
        in_place = not state.host_copy and not state.regen
        micro_refs = self.refs(tensor)
        whole = self.whole_ref(tensor)
        self.program.append(ComputeInstr(
            label=f"merge({tensor.name})",
            duration=0.0 if in_place
            else self.profile.memcpy_time(tensor.size_bytes),
            inputs=tuple(micro_refs),
            outputs=(whole,),
            tag="merge",
        ))
        state.split = None

    def _emit_recompute(
        self, target: TensorSpec, keep: set[int], pos: int,
    ) -> None:
        """Emit the forward chain regenerating ``target`` (and deps).

        Under the memory-centric strategy the chain frees each
        regenerated intermediate as soon as no remaining chain op needs
        it (O(1) extra memory, Section V-D); ``keep`` lists tensors the
        imminent consumer op still requires, ``pos`` is the schedule
        position of that consumer.
        """
        chain = recompute_chain(
            self.graph,
            target.tensor_id,
            self._tensor_available,
            max_len=self.options.max_recompute_chain,
        )
        # Remaining-use counts of each tensor among later chain ops.
        remaining: dict[int, int] = {}
        for op_id in chain:
            for tid in self.graph.ops[op_id].inputs:
                remaining[tid] = remaining.get(tid, 0) + 1
        eager = (
            self.options.recompute_strategy is RecomputeStrategy.MEMORY_CENTRIC
        )
        for op_id in chain:
            chain_op = self.graph.ops[op_id]
            inputs: list[TensorRef] = []
            for tid in chain_op.inputs:
                tensor = self.graph.tensors[tid]
                if not self.tracked(tensor):
                    continue
                state = self.state[tid]
                if state.location == "host":
                    # A swapped checkpoint: demand swap-in before reuse.
                    # Marked `regen` so the recomputation strategy frees
                    # it again rather than letting it linger on device.
                    for ref in self.refs(tensor):
                        self.program.append(SwapInInstr(ref))
                    state.location = "gpu"
                    state.regen = True
                    self._lru_touch(tid)
                inputs.extend(self.refs(tensor))
            outputs: list[TensorRef] = []
            for tid in chain_op.outputs:
                tensor = self.graph.tensors[tid]
                state = self.state[tid]
                state.location = "gpu"
                state.split = None
                state.regen = True
                self._lru_touch(tid)
                outputs.extend(self.refs(tensor))
            self.program.append(ComputeInstr(
                label=f"recompute({chain_op.name})",
                duration=self.profile.op_time(op_id),
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                transient_bytes=chain_op.workspace_bytes,
                op_id=op_id,
                tag="recompute",
            ))
            if not eager:
                continue
            for tid in chain_op.inputs:
                count = remaining.get(tid)
                if count is None:
                    continue
                remaining[tid] = count - 1
                if remaining[tid] > 0:
                    continue
                if tid in keep or tid == target.tensor_id:
                    continue
                tensor = self.graph.tensors[tid]
                state = self.state[tid]
                if not self.tracked(tensor) or state.location != "gpu":
                    continue
                if not (state.regen or self.cfg(tid).evicts):
                    continue  # genuinely live tensors stay
                for ref in self.refs(tensor):
                    self.program.append(FreeInstr(ref, missing_ok=True))
                if state.host_copy:
                    # The host copy keeps whatever shape was swapped out
                    # (micro pieces stay micro pieces).
                    state.location = "host"
                else:
                    state.location = "freed"
                    state.split = None
                state.regen = False
                self._lru_discard(tid)
        # Regenerated stepping-stones whose natural last use already
        # passed (rebuilt only as dependencies on the way to ``target``)
        # have no later op left to die at under any strategy: free them
        # here or they stay resident to the end of the program.
        for op_id in chain:
            for tid in self.graph.ops[op_id].outputs:
                if tid in keep or tid == target.tensor_id:
                    continue
                tensor = self.graph.tensors[tid]
                state = self.state[tid]
                if not self.tracked(tensor) or state.location != "gpu":
                    continue
                if not state.regen:
                    continue
                timeline = self.timeline(tid)
                if timeline is None or timeline.free >= pos:
                    continue
                for ref in self.refs(tensor):
                    self.program.append(FreeInstr(ref, missing_ok=True))
                if state.host_copy:
                    state.location = "host"
                else:
                    state.location = "freed"
                    state.split = None
                state.regen = False
                self._lru_discard(tid)
        self._lru_evict_over_budget(exclude=target.tensor_id)

    def _tensor_available(self, tensor_id: int) -> bool:
        """Available as a recompute source: on device, or re-loadable."""
        return self.state[tensor_id].location in ("gpu", "host")

    # -- op emission --------------------------------------------------------------

    def _op_exec_split(self, op: Operator) -> tuple[str, int] | None:
        """The (dim, p_num) this op executes with, if any.

        Driven by its split output tensor if one exists, else by a split
        input; the kernel must support the dimension.
        """
        for tid in list(op.outputs) + list(op.inputs):
            tensor = self.graph.tensors[tid]
            split = self.effective_split(tensor)
            if split is None:
                # An input may already be resident in split form even if
                # its cfg split came from elsewhere.
                state = self.state.get(tid)
                split = state.split if (state and tid in op.inputs) else None
            if split is not None and op_supports_split(op.op_type, split[0]):
                return split
        return None

    def _region_positions(
        self, pos: int, exec_split: tuple[str, int],
    ) -> list[int]:
        """Consecutive schedule positions forming one streaming region.

        Each subsequent op must execute with the same (dim, p_num) and
        consume a split tensor produced inside the region — the dataflow
        chain the interleaved micro-kernels stream along.
        """
        positions = [pos]
        split_outputs: set[int] = set()
        produced: set[int] = set(self.graph.ops[self.schedule[pos]].outputs)
        for tid in self.graph.ops[self.schedule[pos]].outputs:
            if self.effective_split(self.graph.tensors[tid]) == exec_split:
                split_outputs.add(tid)
        while positions[-1] + 1 < len(self.schedule):
            q = positions[-1] + 1
            next_op = self.graph.ops[self.schedule[q]]
            if self.plan.cpu_update and next_op.phase is Phase.UPDATE:
                break
            if self._op_exec_split(next_op) != exec_split:
                break
            if not (set(next_op.inputs) & split_outputs):
                break
            if set(next_op.inputs) & (produced - split_outputs):
                # The op consumes a *whole* (unsplit) output of an
                # in-region producer; that buffer only completes at the
                # producer's last micro-kernel, so streaming across it
                # is impossible.
                break
            if any(
                self.state[tid].location == "freed"
                for tid in next_op.inputs
                if tid not in split_outputs
                and self.tracked(self.graph.tensors[tid])
            ):
                # A recompute chain must stage a whole tensor before this
                # op; regions cannot stream across that barrier.
                break
            positions.append(q)
            produced.update(next_op.outputs)
            for tid in next_op.outputs:
                if self.effective_split(self.graph.tensors[tid]) == exec_split:
                    split_outputs.add(tid)
        return positions

    def _duration(self, op: Operator, device: Device) -> float:
        if device is Device.CPU:
            return op.flops / self.options.host_flops if op.flops else 0.0
        return self.profile.op_time(op.op_id)

    def _emit_whole_op(self, pos: int, op: Operator, device: Device) -> None:
        inputs: list[TensorRef] = []
        for tid in op.inputs:
            tensor = self.graph.tensors[tid]
            if self.tracked(tensor) and self.state[tid].location in ("gpu", "host"):
                inputs.extend(self.refs(tensor))
        outputs: list[TensorRef] = []
        for tid in op.outputs:
            tensor = self.graph.tensors[tid]
            state = self.state[tid]
            state.location = "gpu"
            state.split = None
            outputs.append(self.whole_ref(tensor))
        if op.phase is Phase.UPDATE and device is Device.CPU:
            param_id = op.attrs.get("param")
            marker = TensorRef(
                param_id if param_id is not None else op.op_id,
                0, UPDATED_MARKER, label=f"{op.name}/done",
            )
            outputs.append(marker)
            self.program.append(ComputeInstr(
                label=op.name,
                duration=self._duration(op, device),
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                transient_bytes=0,
                device=device,
                op_id=op.op_id,
                tag="update",
            ))
            if (
                param_id is not None
                and self.cfg(param_id).opt is MemOption.RESIDE
            ):
                # The GPU holds the live copy: stream the updated values
                # back (ZeRO-Offload). Sharded (SWAP) parameters stay on
                # the host until their next-iteration use.
                nbytes = self.graph.tensors[param_id].size_bytes
                self.program.append(XferInstr(
                    nbytes=nbytes, direction="h2d",
                    label=f"{op.name}/write_back", after=(marker,),
                ))
            return
        self.program.append(ComputeInstr(
            label=op.name,
            duration=self._duration(op, device),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            transient_bytes=op.workspace_bytes,
            device=device,
            op_id=op.op_id,
            tag=op.phase.value,
        ))

    def _classify_split_op(
        self, op: Operator, exec_split: tuple[str, int],
    ) -> dict:
        """Partition an op's tensors into micro-streamed and whole sets.

        Mutates tensor states for the op's outputs, so region
        classification must run in schedule order. Micro inputs whose
        pieces still live on the host are recorded in ``stream_in``: the
        emitter swaps each piece in just before the micro-kernel that
        consumes it.
        """
        dim, p_num = exec_split
        micro_inputs: list[TensorSpec] = []
        whole_inputs: list[TensorRef] = []
        stream_in: set[int] = set()
        for tid in op.inputs:
            tensor = self.graph.tensors[tid]
            if not self.tracked(tensor):
                continue
            state = self.state[tid]
            if state.location not in ("gpu", "host"):
                continue
            if state.split == exec_split:
                micro_inputs.append(tensor)
                if state.location == "host":
                    stream_in.add(tid)
                    state.location = "gpu"
            else:
                whole_inputs.extend(self.refs(tensor))
        micro_outputs: list[TensorSpec] = []
        whole_outputs: list[TensorRef] = []
        for tid in op.outputs:
            tensor = self.graph.tensors[tid]
            state = self.state[tid]
            state.location = "gpu"
            split = self.effective_split(tensor)
            if split == exec_split and op_supports_split(op.op_type, dim):
                state.split = exec_split
                self.applied_splits[tid] = exec_split
                micro_outputs.append(tensor)
            else:
                state.split = None
                whole_outputs.append(self.whole_ref(tensor))
        micro_in_refs = {}
        for t in micro_inputs:
            if t.tensor_id in stream_in:
                # State already flipped to "gpu"; rebuild refs with the
                # preserved split shape.
                micro_in_refs[t.tensor_id] = self._split_refs(t, exec_split)
            else:
                micro_in_refs[t.tensor_id] = self.refs(t)
        return {
            "op": op,
            "duration": self.profile.split_op_time(op.op_id, p_num) / p_num,
            "micro_inputs": micro_inputs,
            "whole_inputs": whole_inputs,
            "micro_outputs": micro_outputs,
            "whole_outputs": whole_outputs,
            "stream_in": stream_in,
            "micro_in_refs": micro_in_refs,
            "micro_out_refs": {t.tensor_id: self.refs(t) for t in micro_outputs},
        }

    def _split_refs(
        self, tensor: TensorSpec, split: tuple[str, int],
    ) -> list[TensorRef]:
        dim, p_num = split
        micros = STensor(tensor).split(dim, p_num)
        return [
            TensorRef(tensor.tensor_id, m.nbytes, m.index,
                      label=f"{tensor.name}[{m.index}/{p_num}]")
            for m in micros
        ]

    def _emit_split_region(
        self, positions: list[int], exec_split: tuple[str, int],
    ) -> None:
        """Emit the interleaved micro-kernels of one streaming region.

        Micro index ``j`` of every region op runs before micro ``j + 1``
        of any op, so each produced micro-tensor is consumed by its
        downstream micro-kernel — and evicted, when its life ends in the
        region — before the next piece materialises. With a region of
        chained ops this bounds the region's live set to roughly one
        micro-slice of each tensor instead of the full tensors.
        """
        _, p_num = exec_split
        region_outputs: set[int] = set()
        for pos in positions:
            region_outputs.update(self.graph.ops[self.schedule[pos]].outputs)
        remaining_inputs: dict[int, set[int]] = {
            pos: set(self.graph.ops[self.schedule[pos]].inputs)
            for pos in positions
        }
        entries: list[tuple[int, dict]] = []
        for index in range(p_num):
            for slot, pos in enumerate(positions):
                if index == 0:
                    # Materialise and classify this op only when its first
                    # micro-kernel is about to issue, so earlier region
                    # ops' releases have already been emitted.
                    op = self.graph.ops[self.schedule[pos]]
                    self._materialize_inputs(op, pos, skip=region_outputs)
                    entries.append(
                        (pos, self._classify_split_op(op, exec_split)),
                    )
                pos, entry = entries[slot]
                op = entry["op"]
                inputs = list(entry["whole_inputs"]) if index == 0 else []
                for t in entry["micro_inputs"]:
                    ref = entry["micro_in_refs"][t.tensor_id][index]
                    if t.tensor_id in entry["stream_in"]:
                        # Just-in-time swap-in: the H2D transfer of piece
                        # ``index`` overlaps the previous micro-kernel.
                        self.program.append(SwapInInstr(ref))
                    inputs.append(ref)
                outputs = [
                    entry["micro_out_refs"][t.tensor_id][index]
                    for t in entry["micro_outputs"]
                ]
                whole_outputs = entry["whole_outputs"]
                alloc_only = tuple(whole_outputs) if index == 0 else ()
                finishes = tuple(whole_outputs) if index == p_num - 1 else ()
                self.program.append(ComputeInstr(
                    label=f"{op.name}[{index + 1}/{p_num}]",
                    duration=entry["duration"],
                    inputs=tuple(inputs),
                    outputs=tuple(outputs),
                    transient_bytes=op.workspace_bytes // p_num,
                    op_id=op.op_id,
                    tag=op.phase.value,
                    alloc_only=alloc_only,
                    finishes=finishes,
                ))
                # Interleaved micro evictions: pieces whose life ends at
                # this op leave before the next micro materialises.
                later_positions = [q for q in positions if q > pos]
                self._micro_evictions(
                    pos, op, index,
                    entry["micro_inputs"], entry["micro_in_refs"],
                    later_positions,
                )
                self._micro_evictions(
                    pos, op, index,
                    entry["micro_outputs"], entry["micro_out_refs"],
                    later_positions,
                )
                if index == p_num - 1:
                    # The op is complete: release its whole tensors and
                    # run the recomputation-strategy cleanup, keeping
                    # anything later region ops still consume.
                    keep: set[int] = set()
                    for later_pos in positions:
                        if later_pos > pos:
                            keep.update(remaining_inputs[later_pos])
                    self._post_op(pos, op, keep=keep)

    def _micro_evictions(
        self,
        pos: int,
        op: Operator,
        index: int,
        tensors: list[TensorSpec],
        refs: dict[int, list[TensorRef]],
        later_positions: list[int] | None = None,
    ) -> None:
        later_positions = later_positions or []
        for tensor in tensors:
            tid = tensor.tensor_id
            cfg = self.cfg(tid)
            timeline = self.timeline(tid)
            if timeline is None:
                continue
            op_pos = pos
            ref = refs[tid][index]
            if any(q in timeline.use_positions for q in later_positions):
                # A later op of this same streaming region still consumes
                # the piece; its own micro-kernel will release it.
                continue
            if timeline.free == op_pos and tid not in op.outputs:
                # Last use ever (any phase): free the piece as soon as its
                # micro-kernel consumed it.
                self.program.append(FreeInstr(ref))
                if index == len(refs[tid]) - 1:
                    self.state[tid].location = "freed"
                    self.state[tid].split = None
            elif (
                op.phase is Phase.FORWARD
                and cfg.evicts
                and timeline.fwd_end == op_pos
            ):
                if cfg.opt is MemOption.SWAP:
                    self.program.append(SwapOutInstr(ref))
                    if index == len(refs[tid]) - 1:
                        # Keep the split shape: the host copy is held as
                        # micro pieces and swapped back in micro-wise.
                        self.state[tid].location = "host"
                        self.state[tid].host_copy = True
                else:
                    self.program.append(FreeInstr(ref))
                    if index == len(refs[tid]) - 1:
                        self.state[tid].location = "freed"
                        self.state[tid].split = None

    # -- post-op bookkeeping ---------------------------------------------------

    def _post_op(
        self, pos: int, op: Operator, keep: set[int] | None = None,
    ) -> None:
        keep = keep or set()
        touched = list(dict.fromkeys(list(op.inputs) + list(op.outputs)))
        for tid in touched:
            if tid in keep:
                continue
            tensor = self.graph.tensors[tid]
            if not self.tracked(tensor):
                continue
            state = self.state[tid]
            if state.location != "gpu":
                continue
            timeline = self.timeline(tid)
            if timeline is None:
                continue
            cfg = self.cfg(tid)
            if tensor.kind in PERSISTENT_KINDS:
                # Sharded weights: swap out unless used by the next op.
                if cfg.opt is MemOption.SWAP and not self._used_at(
                    tid, pos + 1,
                ):
                    for ref in self.refs(tensor):
                        self.program.append(SwapOutInstr(ref))
                    state.location = "host"
                continue
            if (
                cfg.opt is MemOption.SWAP
                and timeline.fwd_end == pos
                and not state.regen
                and state.split is None
            ):
                # Swap out after the last forward use — even with no
                # direct backward consumer, the host copy stays useful
                # as a checkpoint for recompute chains (SuperNeurons
                # keeps conv outputs reachable exactly this way).
                for ref in self.refs(tensor):
                    self.program.append(SwapOutInstr(ref))
                state.location = "host"
                state.host_copy = True
                state.split = None
            elif timeline.free == pos:
                # Last use ever: plain free.
                for ref in self.refs(tensor):
                    self.program.append(FreeInstr(ref, missing_ok=True))
                state.location = "freed"
                state.split = None
                state.regen = False
                self._lru_discard(tid)
            elif (
                cfg.opt is MemOption.RECOMPUTE
                and timeline.fwd_end == pos
                and state.split is None
            ):
                for ref in self.refs(tensor):
                    self.program.append(FreeInstr(ref))
                state.location = "freed"
                state.split = None
        if op.phase is not Phase.FORWARD:
            self._apply_recompute_strategy(pos, op, keep)

    def _used_at(self, tensor_id: int, pos: int) -> bool:
        if pos >= len(self.schedule):
            return False
        next_op = self.graph.ops[self.schedule[pos]]
        return tensor_id in next_op.inputs or tensor_id in next_op.outputs

    def _apply_recompute_strategy(
        self, pos: int, op: Operator, keep: set[int] | None = None,
    ) -> None:
        """Drop regenerated intermediates per the configured strategy."""
        keep = keep or set()
        strategy = self.options.recompute_strategy
        if strategy is RecomputeStrategy.SPEED_CENTRIC:
            return  # intermediates die at their natural last use
        consumed_regen = [
            tid for tid in op.inputs
            if self.state[self.graph.tensors[tid].tensor_id].regen
        ]
        if not consumed_regen and strategy is RecomputeStrategy.MEMORY_CENTRIC:
            return
        if strategy is RecomputeStrategy.MEMORY_CENTRIC:
            for tid, state in self.state.items():
                if tid in keep:
                    continue
                if not state.regen or state.location != "gpu":
                    continue
                tensor = self.graph.tensors[tid]
                for ref in self.refs(tensor):
                    self.program.append(FreeInstr(ref, missing_ok=True))
                if state.host_copy:
                    state.location = "host"
                else:
                    state.location = "freed"
                    state.split = None
                state.regen = False
                self._lru_discard(tid)

    # -- LRU strategy ---------------------------------------------------------

    def _lru_touch(self, tensor_id: int) -> None:
        self._lru_discard(tensor_id)
        self.lru_order.append(tensor_id)

    def _lru_discard(self, tensor_id: int) -> None:
        try:
            self.lru_order.remove(tensor_id)
        except ValueError:
            pass

    def _lru_evict_over_budget(self, exclude: int) -> None:
        if self.options.recompute_strategy is not RecomputeStrategy.LRU:
            return
        budget = self.options.lru_budget_bytes
        resident = [
            tid for tid in self.lru_order
            if self.state[tid].location == "gpu" and self.state[tid].regen
        ]
        total = sum(self.graph.tensors[t].size_bytes for t in resident)
        for tid in list(resident):
            if total <= budget:
                break
            if tid == exclude:
                continue
            tensor = self.graph.tensors[tid]
            for ref in self.refs(tensor):
                self.program.append(FreeInstr(ref, missing_ok=True))
            state = self.state[tid]
            if state.host_copy:
                state.location = "host"
            else:
                state.location = "freed"
                state.split = None
            state.regen = False
            self._lru_discard(tid)
            total -= tensor.size_bytes


def _graph_batch(graph: Graph) -> int:
    """Batch size inferred from the first graph input's sample axis."""
    for tensor in graph.graph_inputs():
        axis = tensor.split_axes.get("sample")
        if axis is not None:
            return tensor.shape[axis]
    return 1


def augment_graph(
    graph: Graph,
    plan: Plan,
    profile: ProfileData,
    schedule: list[int] | None = None,
    options: AugmentOptions | None = None,
) -> AugmentedProgram:
    """Lower (graph, plan) into a runtime instruction program."""
    if schedule is None:
        from repro.graph.scheduler import dfs_schedule

        schedule = dfs_schedule(graph)
    augmenter = _Augmenter(
        graph, plan, schedule, profile, options or AugmentOptions(),
    )
    return augmenter.run()
