"""Memory-management plans: per-tensor strategy configuration.

A :class:`Plan` assigns each tensor a :class:`TensorConfig` — the
``config`` struct of the paper's sTensor (Figure 9): a memory option
(reside / swap / recompute, plus CPU-pinned for the offload baselines)
and the split settings ``p_num`` / ``dim``. Plans are produced by the
planner or by baseline policies and consumed by the graph augmenter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.graph.graph import Graph
from repro.graph.tensor import TensorKind


class MemOption(enum.Enum):
    """Memory option of one (s)Tensor."""

    RESIDE = "reside"        # keep on GPU for its whole lifetime
    SWAP = "swap"            # evict to host after last forward use; swap in
    RECOMPUTE = "recompute"  # free after last forward use; regenerate
    CPU = "cpu"              # pinned in host memory, never on the GPU
                             # (ZeRO-Offload optimizer state)


@dataclass(frozen=True)
class TensorConfig:
    """Strategy configuration of one tensor (the sTensor ``config``).

    ``p_num == 1`` means the tensor is not split; ``dim`` names the split
    dimension (``"sample"``, ``"parameter"``, ``"attribute"``) and is
    only meaningful when ``p_num > 1``.
    """

    opt: MemOption = MemOption.RESIDE
    p_num: int = 1
    dim: str = "sample"

    def __post_init__(self) -> None:
        if self.p_num < 1:
            raise ValueError(f"p_num must be >= 1, got {self.p_num}")
        # Configs are hashed millions of times per planning run (cycle
        # guard keys, probe cache keys); precompute the hash once.
        object.__setattr__(
            self, "_hash", hash((self.opt, self.p_num, self.dim)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_split(self) -> bool:
        return self.p_num > 1

    @property
    def evicts(self) -> bool:
        """Whether the tensor leaves GPU memory mid-iteration."""
        return self.opt in (MemOption.SWAP, MemOption.RECOMPUTE)

    def describe(self) -> str:
        """Short human-readable form ("swap+split(p=4, dim=sample)")."""
        base = self.opt.value
        if self.is_split:
            base += f"+split(p={self.p_num}, dim={self.dim})"
        return base


RESIDE = TensorConfig()


@dataclass
class Plan:
    """A complete memory-management plan for one graph.

    Tensors not present in ``configs`` implicitly RESIDE unsplit.

    Attributes
    ----------
    policy:
        Name of the producing policy ("tsplit", "vdnn_all", ...), for
        reports.
    configs:
        tensor id -> :class:`TensorConfig`.
    cpu_update:
        Whether optimizer-update ops run on the host CPU (ZeRO-Offload /
        FairScale behaviour).
    explanation:
        Planner decision provenance
        (:class:`~repro.telemetry.provenance.PlanExplanation`), attached
        when telemetry provenance is enabled. Pure observation: excluded
        from equality, never consulted by the augmenter or engine.
    """

    policy: str = "base"
    configs: dict[int, TensorConfig] = field(default_factory=dict)
    cpu_update: bool = False
    explanation: object | None = field(
        default=None, compare=False, repr=False,
    )

    def config_for(self, tensor_id: int) -> TensorConfig:
        return self.configs.get(tensor_id, RESIDE)

    def set(self, tensor_id: int, config: TensorConfig) -> None:
        """Assign a config; RESIDE-unsplit clears the entry."""
        if config == RESIDE:
            self.configs.pop(tensor_id, None)
        else:
            self.configs[tensor_id] = config

    def evicted_tensors(self) -> list[int]:
        return [
            tid for tid, cfg in self.configs.items() if cfg.evicts
        ]

    def option_bytes(self, graph: Graph) -> dict[MemOption, int]:
        """Total bytes assigned to each memory option (Figure 14b).

        RESIDE counts only tensors explicitly configured (implicit
        resides are the default and not interesting to report).
        """
        totals = {option: 0 for option in MemOption}
        for tid, cfg in self.configs.items():
            totals[cfg.opt] += graph.tensors[tid].size_bytes
        return totals

    def split_tensors(self) -> list[int]:
        return [tid for tid, cfg in self.configs.items() if cfg.is_split]

    def summary(self, graph: Graph) -> str:
        """One-line description used by benches and examples."""
        by_option = self.option_bytes(graph)
        parts = [f"plan[{self.policy}]"]
        for option in (MemOption.SWAP, MemOption.RECOMPUTE, MemOption.CPU):
            if by_option[option]:
                parts.append(f"{option.value}={by_option[option] / 2**20:.0f}MB")
        splits = self.split_tensors()
        if splits:
            parts.append(f"split_tensors={len(splits)}")
        if self.cpu_update:
            parts.append("cpu_update")
        return " ".join(parts)

    def copy(self) -> "Plan":
        return Plan(
            policy=self.policy,
            configs=dict(self.configs),
            cpu_update=self.cpu_update,
            explanation=self.explanation,
        )


def validate_plan(graph: Graph, plan: Plan) -> None:
    """Reject configurations that are semantically impossible.

    * RECOMPUTE applies only to activations (weights can't be recomputed).
    * CPU applies only to optimizer state and parameter gradients.
    * Splits must target a declared split dimension of the tensor.
    * Graph inputs cannot be evicted (they have no producer to rerun and
      live in host memory anyway).
    """
    from repro.errors import PolicyError

    for tid, cfg in plan.configs.items():
        tensor = graph.tensors.get(tid)
        if tensor is None:
            raise PolicyError(f"plan references unknown tensor id {tid}")
        if cfg.opt is MemOption.RECOMPUTE and tensor.kind not in (
            TensorKind.ACTIVATION,
        ):
            raise PolicyError(
                f"cannot recompute {tensor.kind.value} tensor {tensor.name!r}"
            )
        if cfg.opt is MemOption.CPU and tensor.kind not in (
            TensorKind.OPTIMIZER_STATE, TensorKind.GRAD_PARAM,
        ):
            raise PolicyError(
                f"CPU pinning is only modelled for optimizer state and "
                f"parameter gradients, not {tensor.kind.value} "
                f"({tensor.name!r})"
            )
        if cfg.opt is MemOption.SWAP and tensor.kind is TensorKind.INPUT:
            raise PolicyError(
                f"graph input {tensor.name!r} cannot be swapped"
            )
        if cfg.is_split:
            if cfg.dim not in tensor.split_axes:
                raise PolicyError(
                    f"tensor {tensor.name!r} has no {cfg.dim!r} split "
                    f"dimension (has {sorted(tensor.split_axes)})"
                )
            axis = tensor.split_axes[cfg.dim]
            if tensor.shape[axis] < cfg.p_num:
                raise PolicyError(
                    f"tensor {tensor.name!r} axis {axis} (extent "
                    f"{tensor.shape[axis]}) cannot split {cfg.p_num} ways"
                )
