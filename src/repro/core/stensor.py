"""The splittable-tensor (sTensor) abstraction — Figure 9 of the paper.

An :class:`STensor` wraps a :class:`~repro.graph.tensor.TensorSpec` with
its strategy configuration and exposes the paper's interfaces:

* ``set_config(cfg)`` — attach the memory option + split settings;
* ``split(dim, p_num)`` — break the operation boundary, yielding
  :class:`MicroTensor` views that are each an independent unit for memory
  operations (allocate/evict, swap/recompute);
* ``merge(dim)`` — reassemble micro-tensors into the full tensor, either
  by concatenation along ``dim`` or by element-wise reduction.

A re-split (changing ``p_num``) composes ``merge`` + ``split``; when old
and new part counts nest evenly (e.g. 2 -> 4 on the same dim), the
operation is performable *in place* (Section V-C), sharing storage with
adjusted pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import TensorConfig
from repro.errors import ReproError
from repro.graph.tensor import TensorSpec
from repro.units import numel


class SplitError(ReproError):
    """Invalid split/merge request on an sTensor."""


@dataclass(frozen=True)
class MicroTensor:
    """One fine-grained piece of a split sTensor.

    Identified by ``(tensor_id, index, p_num)``; carries its own shape and
    size so memory operations can account for uneven splits.
    """

    tensor_id: int
    index: int
    p_num: int
    dim: str
    shape: tuple[int, ...]
    nbytes: int

    @property
    def key(self) -> tuple[int, int]:
        """Hashable identity used by the runtime's resident-set tracking."""
        return (self.tensor_id, self.index)


@dataclass
class STensor:
    """A tensor plus its splitting/memory configuration."""

    spec: TensorSpec
    cfg: TensorConfig = field(default_factory=TensorConfig)
    _micros: list[MicroTensor] | None = field(default=None, repr=False)

    # -- Figure 9 interfaces -------------------------------------------------

    def set_config(self, cfg: TensorConfig) -> None:
        """Attach a strategy configuration (drops stale micro views)."""
        self.cfg = cfg
        self._micros = None

    def split(self, dim: str, p_num: int) -> list[MicroTensor]:
        """Split into ``p_num`` micro-tensors along the named dimension.

        Raises
        ------
        SplitError
            If the tensor does not expose ``dim`` or the axis extent is
            smaller than ``p_num``.
        """
        if p_num < 1:
            raise SplitError(f"p_num must be >= 1, got {p_num}")
        if p_num > 1 and dim not in self.spec.split_axes:
            raise SplitError(
                f"tensor {self.spec.name!r} has no split dimension {dim!r}"
            )
        try:
            micros = [
                MicroTensor(
                    tensor_id=self.spec.tensor_id,
                    index=i,
                    p_num=p_num,
                    dim=dim,
                    shape=self.spec.micro_shape(dim, p_num, i) if p_num > 1
                    else self.spec.shape,
                    nbytes=(
                        self.spec.micro_size_bytes(dim, p_num, i)
                        if p_num > 1 else self.spec.size_bytes
                    ),
                )
                for i in range(p_num)
            ]
        except ValueError as exc:
            raise SplitError(str(exc)) from exc
        self._micros = micros
        return list(micros)

    def merge(self, dim: str, *, reduce: bool = False) -> TensorSpec:
        """Merge current micro-tensors back into the full tensor.

        ``reduce=False`` concatenates along ``dim`` (shapes must tile the
        original extent); ``reduce=True`` element-wise-reduces equal-shaped
        micro-tensors (used e.g. for gradient partial sums).
        """
        micros = self._micros
        if not micros:
            raise SplitError(
                f"tensor {self.spec.name!r} is not split; nothing to merge"
            )
        if reduce:
            base = micros[0].shape
            if any(m.shape != base for m in micros):
                raise SplitError(
                    "element-wise merge requires equal micro shapes"
                )
        else:
            axis = self.spec.axis_for(dim)
            total = sum(m.shape[axis] for m in micros)
            if total != self.spec.shape[axis]:
                raise SplitError(
                    f"merge along {dim!r} covers {total} of "
                    f"{self.spec.shape[axis]} slices"
                )
        self._micros = None
        return self.spec

    # -- queries ----------------------------------------------------------------

    @property
    def micros(self) -> list[MicroTensor]:
        """Micro-tensors of the *configured* split (computed lazily)."""
        if self._micros is None:
            self.split(self.cfg.dim, self.cfg.p_num)
        assert self._micros is not None
        return list(self._micros)

    @property
    def is_split(self) -> bool:
        return self.cfg.is_split

    def micro_bytes(self) -> list[int]:
        """Sizes of the configured micro-tensors in bytes."""
        return [m.nbytes for m in self.micros]

    def resplit_in_place_ok(self, new_p_num: int) -> bool:
        """Whether re-splitting to ``new_p_num`` shares storage in place.

        True when the part counts nest (one divides the other) and the
        axis extent divides evenly, e.g. 2 -> 4 on the batch dimension
        shares the same memory with different pointer offsets
        (Section V-C's example).
        """
        old = self.cfg.p_num
        if old == new_p_num:
            return True
        big, small = max(old, new_p_num), min(old, new_p_num)
        if small == 0 or big % small != 0:
            return False
        if self.cfg.p_num > 1:
            axis = self.spec.axis_for(self.cfg.dim)
            return self.spec.shape[axis] % big == 0
        return True

    def total_bytes(self) -> int:
        return self.spec.size_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"STensor({self.spec.name!r}, cfg={self.cfg.describe()}, "
            f"numel={numel(self.spec.shape)})"
        )
