"""Static memory simulation of a plan — the planner's ``M_i``.

Given a graph, a schedule and a :class:`~repro.core.plan.Plan`, compute
the per-step GPU memory requirement the paper's planner checks against
device capacity (Algorithm 2, line 3). The model mirrors the runtime
augmenter's behaviour:

* RESIDE tensors occupy memory over their whole live interval.
* SWAP / RECOMPUTE tensors occupy memory from allocation to their last
  forward use, vanish, and reappear around their first backward use (the
  Figure-4b "re-generation" tail). Swapped tensors reappear one op early
  (prefetch); recomputed ones at the consumer itself.
* Parameters and optimizer state under SWAP (FairScale-style sharding)
  are resident only in a window around each use.
* CPU-pinned tensors never occupy GPU memory.
* A split tensor whose micro-tensors are evicted eagerly occupies only
  ``ceil(2 * size / p_num)`` at its producer and regeneration sites
  (double-buffered streaming: one micro-tensor in flight over PCIe while
  the next is computed).
* Operator workspace is charged at the op's step, divided by the split
  count when the op runs as micro-kernels.

The dynamic engine (``repro.runtime``) adds transfer timing and stalls
on top, dispatching in chronological order so its ``peak_memory`` is the
exact chronological peak — including the window where a buffer stays
live until both its eviction transfer and its last consumer finish;
byte-feasibility here is designed to be a faithful upper bound of that
chronologically-exact accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.split_rules import effective_split, op_exec_split
from repro.graph.graph import Graph
from repro.graph.liveness import PERSISTENT_KINDS, LivenessInfo, compute_liveness
from repro.graph.ops import Phase
from repro.graph.tensor import TensorKind, TensorSpec

#: Micro-tensors kept resident simultaneously while streaming a split
#: tensor through PCIe (produce one while the previous is in flight).
STREAM_DEPTH = 2

#: How many ops before the backward consumer a swap-in is issued.
PREFETCH_OPS = 4


@dataclass(frozen=True)
class TensorTimeline:
    """Schedule positions relevant to one tensor's memory behaviour."""

    alloc: int          # producer position (or 0 for persistent kinds)
    free: int           # last-use position
    fwd_end: int        # last use in the forward phase (>= alloc)
    bwd_uses: tuple[int, ...]  # positions of backward/update-phase uses
    use_positions: tuple[int, ...]  # all consumer positions


def tensor_timeline(
    graph: Graph,
    liveness: LivenessInfo,
    tensor: TensorSpec,
) -> TensorTimeline | None:
    """Compute the phase-aware timeline of one tensor, or None if dead."""
    if tensor.tensor_id not in liveness.alloc_step:
        return None
    alloc, free = liveness.interval(tensor.tensor_id)
    position = liveness.position
    fwd_end = alloc
    bwd_uses: list[int] = []
    uses: list[int] = []
    for consumer_id in tensor.consumers:
        pos = position.get(consumer_id)
        if pos is None:
            continue
        uses.append(pos)
        op = graph.ops[consumer_id]
        if op.phase is Phase.FORWARD:
            fwd_end = max(fwd_end, pos)
        else:
            bwd_uses.append(pos)
    return TensorTimeline(
        alloc=alloc,
        free=free,
        fwd_end=fwd_end,
        bwd_uses=tuple(sorted(bwd_uses)),
        use_positions=tuple(sorted(uses)),
    )


def needs_whole_staging(graph: Graph, plan: Plan, op, pos: int,
                        timeline_of) -> bool:
    """Whether executing the op at ``pos`` first stages a whole tensor.

    Two cases, mirrored exactly by the augmenter's region-formation
    rule:

    * an input is RECOMPUTE-configured and regenerates at this position
      (the chain re-materialises the full tensor before the op runs);
    * an input is the *unsplit* output of the immediately preceding
      (split-executing) op — that buffer only completes at the
      producer's last micro-kernel, so no streaming region can span it.
    """
    from repro.core.plan import MemOption as _MemOption

    for tid in op.inputs:
        tensor = graph.tensors[tid]
        cfg = plan.config_for(tid)
        if cfg.opt is _MemOption.RECOMPUTE:
            timeline = timeline_of(tid)
            if (
                timeline is not None
                and pos in timeline.bwd_uses
                and pos > timeline.fwd_end
            ):
                return True
        if tensor.kind in PERSISTENT_KINDS or tensor.producer is None:
            continue
        timeline = timeline_of(tid)
        if timeline is None or timeline.alloc != pos - 1:
            continue
        if effective_split(graph, plan, tensor) is not None:
            continue
        producer_op = graph.ops[tensor.producer]
        if op_exec_split(graph, plan, producer_op) is not None:
            return True
    return False


def _streamed_bytes(size: int, p_num: int) -> int:
    """Resident bytes of an eagerly-evicted split tensor at its hot sites."""
    micro = -(-size // p_num)  # ceil
    return min(size, STREAM_DEPTH * micro)


def recompute_extra(
    graph: Graph,
    plan: Plan,
    free_step: dict[int, int],
    tensor: TensorSpec,
    timeline: TensorTimeline,
    deps: set[int] | None = None,
) -> int:
    """Chain-transient bytes charged at a RECOMPUTE tensor's regen step.

    Regenerating a tensor may require re-materialising dead ancestors;
    free-as-you-go execution bounds the transient to the largest chain
    op's working set (see :func:`repro.core.recompute.chain_extra_bytes`).
    ``deps`` collects the tensor ids whose configuration the chain read
    (even on failure), so incremental callers know when to re-evaluate.
    """
    from repro.core.recompute import chain_extra_bytes, planning_chain
    from repro.errors import PlanningError

    if not timeline.bwd_uses:
        return 0
    try:
        chain = planning_chain(
            graph, tensor.tensor_id, plan, free_step,
            timeline.bwd_uses[0], max_len=512, deps=deps,
        )
    except PlanningError:
        return 0  # impossible chain: the augmenter will report it properly
    return chain_extra_bytes(graph, chain, tensor.tensor_id)


def _contributions(
    graph: Graph,
    tensor: TensorSpec,
    timeline: TensorTimeline,
    cfg: TensorConfig,
    last_step: int,
    chain_extra: int = 0,
    exec_split_at=None,
    breaks_at=None,
) -> list[tuple[int, int, int]]:
    """(start, end, bytes) intervals this tensor occupies, inclusive.

    ``exec_split_at(pos)`` reports which (dim, p_num) the op at a
    schedule position executes with under the plan; streaming windows
    (``hot`` instead of ``size``) are only granted where the adjacent
    operators genuinely execute with this tensor's split — mirroring the
    augmenter's region formation. Without the callback the model is
    optimistic (used only by tests).
    """
    size = tensor.size_bytes
    opt = cfg.opt

    if opt is MemOption.CPU:
        return []

    split = (cfg.dim, cfg.p_num) if cfg.is_split else None

    def streams_at(pos: int) -> bool:
        if split is None:
            return False
        if exec_split_at is None:
            return True
        return exec_split_at(pos) == split

    def broken_at(pos: int) -> bool:
        return breaks_at(pos) if breaks_at is not None else False

    persistent = tensor.kind in PERSISTENT_KINDS
    if opt is MemOption.RESIDE:
        if persistent:
            return [(0, last_step, size)]
        if (
            split is not None
            and timeline.free == timeline.alloc + 1
            and streams_at(timeline.alloc)
            and all(streams_at(p) for p in timeline.use_positions)
            and not broken_at(timeline.free)
        ):
            # Split without eviction, producer and final consumer
            # adjacent in one streaming region: micro pieces are freed by
            # the consumer's micro-kernels as soon as produced, so the
            # whole life is one streaming window. This is the
            # backward-pass input/output memory-reuse of Step 2
            # (gradients streaming through split backward operators).
            hot = _streamed_bytes(size, cfg.p_num)
            return [(timeline.alloc, timeline.free, hot)]
        return [(timeline.alloc, timeline.free, size)]

    if persistent or tensor.kind in (TensorKind.GRAD_PARAM,):
        # Sharded weights / offloaded gradients: resident only around uses.
        windows: list[tuple[int, int, int]] = []
        if tensor.kind is TensorKind.GRAD_PARAM:
            windows.append((timeline.alloc, timeline.alloc, size))
        for use in timeline.use_positions:
            start = max(0, use - 1)
            windows.append((start, use, size))
        return windows

    # Activation (or activation gradient) under swap/recompute.
    hot = _streamed_bytes(size, cfg.p_num) if split else size
    # A single consumer that cannot execute this split forces a merge,
    # which permanently collapses the tensor back to whole form — after
    # that, no site can stream it micro-wise.
    never_merged = split is not None and all(
        streams_at(p) for p in timeline.use_positions
    )
    prod_streams = streams_at(timeline.alloc)
    cons_streams = timeline.fwd_end == timeline.alloc or (
        timeline.fwd_end == timeline.alloc + 1
        and streams_at(timeline.fwd_end)
        and not broken_at(timeline.fwd_end)
    )
    windows = []
    if split is not None and prod_streams and cons_streams:
        # Streamed production (and adjacent consumption): micro-tensors
        # are evicted as soon as produced/consumed within the region.
        windows.append((timeline.alloc, timeline.fwd_end, hot))
    else:
        # No streaming region: fully resident through the forward part.
        windows.append((timeline.alloc, timeline.fwd_end, size))
    if timeline.bwd_uses:
        first_bwd = timeline.bwd_uses[0]
        # Only swapped tensors regenerate micro-wise (the runtime streams
        # their swap-ins just in time inside the consumer's region);
        # recompute chains re-materialise the whole tensor. The micro
        # form must additionally have survived the forward pass (no
        # merges at any consumer).
        if (
            split is not None
            and opt is MemOption.SWAP
            and never_merged
            and prod_streams
        ):
            regen, nbytes = first_bwd, hot
        elif opt is MemOption.SWAP:
            # Whole-tensor prefetch: resident from the prefetch point.
            regen = max(timeline.fwd_end + 1, first_bwd - PREFETCH_OPS)
            nbytes = size
        else:
            regen, nbytes = first_bwd, size
        regen = min(regen, timeline.free)
        windows.append((regen, timeline.free, nbytes))
        if chain_extra > 0:
            windows.append((first_bwd, first_bwd, chain_extra))
    return windows


def simulate_memory(
    graph: Graph,
    schedule: list[int],
    plan: Plan,
    liveness: LivenessInfo | None = None,
) -> np.ndarray:
    """Per-step memory requirement (bytes) under a plan."""
    if liveness is None:
        liveness = compute_liveness(graph, schedule)
    steps = len(schedule)
    last = steps - 1
    delta = np.zeros(steps + 1, dtype=np.float64)

    exec_cache: dict[int, tuple[str, int] | None] = {}
    break_cache: dict[int, bool] = {}
    timelines: dict[int, TensorTimeline | None] = {}

    def timeline_of(tid: int) -> TensorTimeline | None:
        if tid not in timelines:
            timelines[tid] = tensor_timeline(graph, liveness, graph.tensors[tid])
        return timelines[tid]

    def exec_split_at(pos: int) -> tuple[str, int] | None:
        if pos not in exec_cache:
            exec_cache[pos] = op_exec_split(
                graph, plan, graph.ops[schedule[pos]],
            )
        return exec_cache[pos]

    def breaks_at(pos: int) -> bool:
        if pos not in break_cache:
            break_cache[pos] = needs_whole_staging(
                graph, plan, graph.ops[schedule[pos]], pos, timeline_of,
            )
        return break_cache[pos]

    for tensor in graph.tensors.values():
        timeline = tensor_timeline(graph, liveness, tensor)
        if timeline is None:
            continue
        cfg = plan.config_for(tensor.tensor_id)
        if cfg.is_split and effective_split(graph, plan, tensor) is None:
            # Configured split is not executable: behave as unsplit.
            cfg = TensorConfig(opt=cfg.opt)
        chain_extra = 0
        if cfg.opt is MemOption.RECOMPUTE:
            chain_extra = recompute_extra(
                graph, plan, liveness.free_step, tensor, timeline,
            )
        for start, end, nbytes in _contributions(
            graph, tensor, timeline, cfg, last, chain_extra, exec_split_at,
            breaks_at,
        ):
            if end < start:
                continue
            delta[start] += nbytes
            delta[min(end + 1, steps)] -= nbytes

    curve = np.cumsum(delta[:steps])

    for idx, op_id in enumerate(schedule):
        op = graph.ops[op_id]
        if not op.workspace_bytes:
            continue
        split = exec_split_at(idx)
        p_num = split[1] if split else 1
        curve[idx] += op.workspace_bytes / p_num
    return curve


def plan_peak_memory(
    graph: Graph,
    schedule: list[int],
    plan: Plan,
    liveness: LivenessInfo | None = None,
) -> int:
    """Peak of the simulated memory curve, in bytes."""
    curve = simulate_memory(graph, schedule, plan, liveness)
    return int(curve.max()) if len(curve) else 0


class MemoryCurve:
    """Incrementally-maintained :func:`simulate_memory` curve.

    Holds the per-tensor occupancy intervals of one (graph, schedule,
    plan) triple and updates them in place when a single tensor's config
    changes (:meth:`apply`), instead of re-walking every tensor. The
    planner's greedy loop applies one decision per iteration, so the
    update cost is O(affected span), not O(tensors x steps).

    Correctness rests on a structural dependency radius: a tensor ``u``'s
    contribution reads (a) its own config, (b) the execution splits of
    ops adjacent to ``u`` — which depend on configs of *their* adjacent
    tensors, (c) the whole-staging predicate at ``u``'s consumer
    positions — which additionally reads the exec splits of the producers
    of those consumers' inputs, and (d) for RECOMPUTE tensors, the
    configs queried while building the regeneration chain. Inverting
    that: when ``t`` changes, the affected set is ``t``, every tensor
    sharing an op with ``t``, every tensor adjacent to a consumer of an
    output of an op adjacent to ``t``, plus the recorded chain
    dependants. All interval bytes are integers (< 2^53), so removal and
    re-addition are exact and the curve stays byte-identical to a from-
    scratch :func:`simulate_memory` — asserted by the equivalence tests.
    """

    def __init__(
        self,
        graph: Graph,
        schedule: list[int],
        plan: Plan,
        liveness: LivenessInfo | None = None,
    ) -> None:
        self.graph = graph
        self.schedule = list(schedule)
        self.plan = plan
        self.liveness = liveness or compute_liveness(graph, schedule)
        self.steps = len(self.schedule)
        self._delta = np.zeros(self.steps + 1, dtype=np.float64)
        self._workspace = np.zeros(self.steps, dtype=np.float64)
        self._windows: dict[int, tuple[tuple[int, int, int], ...]] = {}
        self._timelines: dict[int, TensorTimeline | None] = {}
        #: RECOMPUTE tensor id -> tensor ids its chain read.
        self._chain_deps: dict[int, tuple[int, ...]] = {}
        #: tensor id -> RECOMPUTE tensors whose chains read it.
        self._dep_index: dict[int, set[int]] = {}
        self._values: np.ndarray | None = None

        exec_memo: dict[int, tuple[str, int] | None] = {}
        break_memo: dict[int, bool] = {}
        added: list[tuple[int, int, int]] = []
        for tid in graph.tensors:
            added.extend(self._add_tensor(tid, exec_memo, break_memo))
        self._bump(added, 1.0)
        for pos in range(self.steps):
            self._workspace[pos] = self._workspace_at(pos, exec_memo)

    # -- queries ---------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The per-step requirement curve (bytes); do not mutate."""
        if self._values is None:
            self._values = (
                np.cumsum(self._delta[: self.steps]) + self._workspace
            )
        return self._values

    def peak(self) -> int:
        """Peak of the maintained curve, in bytes."""
        curve = self.values
        return int(curve.max()) if len(curve) else 0

    def over_budget(self, budget: float) -> np.ndarray:
        """Schedule positions whose requirement exceeds ``budget``."""
        return np.nonzero(self.values > budget)[0]

    # -- incremental update ----------------------------------------------------

    def apply(
        self,
        tensor_id: int,
        old_config: TensorConfig | None = None,
        new_config: TensorConfig | None = None,
    ) -> None:
        """Re-derive every interval affected by one tensor's config change.

        The owning :class:`~repro.core.plan.Plan` must already hold the
        new config; ``old_config``/``new_config`` are advisory (equal
        configs short-circuit). Multi-tensor decisions are applied by
        calling this once per member after updating the plan — the union
        of per-member affected sets covers the joint change because the
        dependency radius is structural, not config-dependent.
        """
        if (
            old_config is not None
            and new_config is not None
            and old_config == new_config
        ):
            return
        tensors, positions = self._affected(tensor_id)
        exec_memo: dict[int, tuple[str, int] | None] = {}
        break_memo: dict[int, bool] = {}
        removed: list[tuple[int, int, int]] = []
        added: list[tuple[int, int, int]] = []
        for tid in tensors:
            removed.extend(self._remove_tensor(tid))
        for tid in tensors:
            added.extend(self._add_tensor(tid, exec_memo, break_memo))
        self._bump(removed, -1.0)
        self._bump(added, 1.0)
        for pos in positions:
            self._workspace[pos] = self._workspace_at(pos, exec_memo)
        self._values = None

    def _affected(self, tensor_id: int) -> tuple[set[int], set[int]]:
        """(tensor ids, workspace positions) to re-derive for one change."""
        graph = self.graph
        tensor = graph.tensors[tensor_id]
        first_ops: set[int] = set(tensor.consumers)
        if tensor.producer is not None:
            first_ops.add(tensor.producer)
        ops = set(first_ops)
        for op_id in first_ops:
            for out in graph.ops[op_id].outputs:
                ops.update(graph.tensors[out].consumers)
        tensors: set[int] = {tensor_id}
        positions: set[int] = set()
        position = self.liveness.position
        for op_id in ops:
            op = graph.ops[op_id]
            tensors.update(op.inputs)
            tensors.update(op.outputs)
            pos = position.get(op_id)
            if pos is not None:
                positions.add(pos)
        tensors.update(self._dep_index.get(tensor_id, ()))
        return tensors, positions

    # -- bookkeeping -----------------------------------------------------------

    def _timeline(self, tid: int) -> TensorTimeline | None:
        if tid not in self._timelines:
            self._timelines[tid] = tensor_timeline(
                self.graph, self.liveness, self.graph.tensors[tid],
            )
        return self._timelines[tid]

    def _bump(
        self, windows: list[tuple[int, int, int]], sign: float,
    ) -> None:
        """Apply interval deltas in one batched scatter-add.

        Interval bytes are integers below 2^53, so float accumulation is
        exact in any order — the batched update stays byte-identical to
        the former per-window loop. Small batches (incremental plan
        deltas run a median of ~20 windows) stay on the plain loop,
        which beats ``np.fromiter`` + ``np.add.at`` fixed costs below
        ~32 windows; the full-curve build and recompute-chain updates
        run hundreds to thousands of windows and take the batched path.
        """
        if not windows:
            return
        count = len(windows)
        if count < 32:
            for start, end, nbytes in windows:
                value = sign * nbytes
                self._delta[start] += value
                self._delta[min(end + 1, self.steps)] -= value
            return
        starts = np.fromiter(
            (w[0] for w in windows), dtype=np.intp, count=count,
        )
        ends = np.fromiter(
            (min(w[1] + 1, self.steps) for w in windows),
            dtype=np.intp, count=count,
        )
        nbytes = np.fromiter(
            (w[2] for w in windows), dtype=np.float64, count=count,
        )
        if sign < 0:
            nbytes = -nbytes
        np.add.at(self._delta, starts, nbytes)
        np.add.at(self._delta, ends, -nbytes)

    def _remove_tensor(self, tid: int) -> tuple[tuple[int, int, int], ...]:
        windows = self._windows.pop(tid, ())
        for dep in self._chain_deps.pop(tid, ()):
            dependants = self._dep_index.get(dep)
            if dependants is not None:
                dependants.discard(tid)
        return windows

    def _add_tensor(
        self,
        tid: int,
        exec_memo: dict[int, tuple[str, int] | None],
        break_memo: dict[int, bool],
    ) -> tuple[tuple[int, int, int], ...]:
        graph, plan = self.graph, self.plan
        tensor = graph.tensors[tid]
        timeline = self._timeline(tid)
        if timeline is None:
            return ()
        cfg = plan.config_for(tid)
        if cfg.is_split and effective_split(graph, plan, tensor) is None:
            cfg = TensorConfig(opt=cfg.opt)
        chain_extra = 0
        if cfg.opt is MemOption.RECOMPUTE:
            deps: set[int] = set()
            chain_extra = recompute_extra(
                graph, plan, self.liveness.free_step, tensor, timeline,
                deps=deps,
            )
            deps.discard(tid)
            if deps:
                self._chain_deps[tid] = tuple(deps)
                for dep in deps:
                    self._dep_index.setdefault(dep, set()).add(tid)

        def exec_split_at(pos: int) -> tuple[str, int] | None:
            if pos not in exec_memo:
                exec_memo[pos] = op_exec_split(
                    graph, plan, graph.ops[self.schedule[pos]],
                )
            return exec_memo[pos]

        def breaks_at(pos: int) -> bool:
            if pos not in break_memo:
                break_memo[pos] = needs_whole_staging(
                    graph, plan, graph.ops[self.schedule[pos]], pos,
                    self._timeline,
                )
            return break_memo[pos]

        windows = tuple(
            (start, end, nbytes)
            for start, end, nbytes in _contributions(
                graph, tensor, timeline, cfg, self.steps - 1, chain_extra,
                exec_split_at, breaks_at,
            )
            if end >= start
        )
        if windows:
            self._windows[tid] = windows
        return windows

    def _workspace_at(
        self, pos: int, exec_memo: dict[int, tuple[str, int] | None],
    ) -> float:
        op = self.graph.ops[self.schedule[pos]]
        if not op.workspace_bytes:
            return 0.0
        if pos not in exec_memo:
            exec_memo[pos] = op_exec_split(self.graph, self.plan, op)
        split = exec_memo[pos]
        p_num = split[1] if split else 1
        return op.workspace_bytes / p_num
