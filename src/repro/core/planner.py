"""The model-guided planner — Algorithm 2 of the paper.

Given an operation schedule and a GPU memory budget, the planner
simulates the memory requirement ``M_i`` at every op and, whenever it
exceeds the budget (a *memory bottleneck*), greedily applies the
candidate strategy with the smallest ``ΔT / ΔM``:

* **Step 1** — non-split strategies (swap / recompute) on live tensors
  that are not the current op's inputs/outputs;
* **Step 2** — split strategies on the current op's input/output tensors
  (including upgrading an already-evicted tensor to an evicted *split*
  tensor, which shrinks its regeneration footprint);
* **Step 3** — the better of the two is committed.

Planning terminates when every bottleneck is eliminated, or raises
:class:`~repro.errors.PlanningError` when no candidate remains (the
paper's "fail because of no more available tensors").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import Candidate, CostModel, CostModelOptions
from repro.core.plan import Plan
from repro.core.profiler import ProfileData, Profiler
from repro.core.recompute import RecomputeStrategy
from repro.core.simulate import MemoryCurve, simulate_memory
from repro.errors import PlanningError
from repro.graph.graph import Graph
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.telemetry import get_telemetry
from repro.telemetry.provenance import PlanExplanation, PlanRecorder
from repro.units import format_bytes


@dataclass(frozen=True)
class PlannerOptions:
    """Planner tuning knobs.

    ``memory_margin`` reserves a slice of device memory for allocator
    slack (fragmentation, alignment); the planner plans against
    ``capacity * (1 - memory_margin)``.
    """

    memory_margin: float = 0.02
    max_decisions: int = 20_000
    cost: CostModelOptions = field(default_factory=CostModelOptions)
    recompute_strategy: RecomputeStrategy = RecomputeStrategy.MEMORY_CENTRIC
    #: Victim-selection ordering: "ratio" (the paper's ΔT/ΔM greedy),
    #: "largest" (biggest ΔM first) or "fifo" (earliest-generated tensor
    #: first) — the latter two exist for the victim-selection ablation.
    ordering: str = "ratio"
    #: Maintain the memory curve and cost-model timings incrementally
    #: (delta updates per decision) instead of recomputing them from
    #: scratch after every decision. Produces byte-identical plans; False
    #: exists as the reference implementation for equivalence tests and
    #: the planner benchmark.
    incremental: bool = True


@dataclass
class PlanResult:
    """Outcome of a planning run."""

    plan: Plan
    schedule: list[int]
    peak_memory: int
    baseline_peak: int
    estimated_time: float
    baseline_time: float
    decisions: list[Candidate]

    @property
    def explanation(self) -> PlanExplanation | None:
        """Decision provenance, when recorded (see :mod:`repro.telemetry`)."""
        return self.plan.explanation

    @property
    def estimated_overhead(self) -> float:
        """ΔT(C) / T — the planner's own estimate of the slowdown."""
        if self.baseline_time <= 0:
            return 0.0
        return (self.estimated_time - self.baseline_time) / self.baseline_time

    def describe(self) -> str:
        return (
            f"plan[{self.plan.policy}]: peak "
            f"{format_bytes(self.baseline_peak)} -> "
            f"{format_bytes(self.peak_memory)}, est. time "
            f"{self.baseline_time * 1e3:.1f} -> "
            f"{self.estimated_time * 1e3:.1f} ms, "
            f"{len(self.decisions)} decisions"
        )


class TsplitPlanner:
    """Profiling-based planner (Algorithm 2).

    Parameters
    ----------
    gpu:
        Target device (capacity + performance model).
    options:
        Planner options; ``options.cost.allow_split=False`` yields the
        "TSPLIT w/o Split" ablation of Figure 14a.
    policy_name:
        Recorded on the produced plan.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        options: PlannerOptions | None = None,
        *,
        policy_name: str = "tsplit",
        profiler: Profiler | None = None,
    ) -> None:
        self.gpu = gpu
        self.options = options or PlannerOptions()
        self.policy_name = policy_name
        self.profiler = profiler or Profiler(gpu)

    def plan(
        self,
        graph: Graph,
        schedule: list[int] | None = None,
        profile: ProfileData | None = None,
        *,
        explain: bool | None = None,
    ) -> PlanResult:
        """Search a strategy combination that fits the GPU memory budget.

        ``explain=True`` records decision provenance
        (:class:`~repro.telemetry.provenance.PlanExplanation`) on the
        produced plan; ``None`` follows the active telemetry session.
        Provenance is observation only — the decision sequence is
        byte-identical with it on or off.

        Raises
        ------
        PlanningError
            If some bottleneck cannot be eliminated with the available
            tensors and strategies.
        """
        if schedule is None:
            schedule = dfs_schedule(graph)
        if profile is None:
            profile = self.profiler.profile(graph)

        budget = self.gpu.memory_bytes * (1.0 - self.options.memory_margin)
        plan = Plan(policy=self.policy_name)
        if explain is None:
            explain = get_telemetry().provenance
        recorder: PlanRecorder | None = None
        if explain:
            recorder = PlanRecorder(
                graph, schedule,
                policy=self.policy_name,
                capacity=self.gpu.memory_bytes,
                budget=budget,
            )
        incremental = self.options.incremental
        cost_model = CostModel(
            graph, schedule, profile, self.options.cost, caching=incremental,
        )
        cost_model.refresh(plan)
        curve_state: MemoryCurve | None = None
        if incremental:
            curve_state = MemoryCurve(
                graph, schedule, plan, cost_model.liveness,
            )
            curve = curve_state.values
        else:
            curve = simulate_memory(graph, schedule, plan, cost_model.liveness)
        baseline_peak = int(curve.max()) if len(curve) else 0
        baseline_time = profile.total_compute_time(schedule)
        if recorder is not None:
            recorder.begin(baseline_peak, baseline_time)
        extra_time = 0.0
        decisions: list[Candidate] = []
        # Cycle guard: a (tensor, config) pair is applied at most once, so
        # reconfiguration (upgrading an earlier choice) cannot oscillate.
        tried: set[tuple[frozenset, frozenset]] = set()

        while True:
            over_budget = np.nonzero(curve > budget)[0]
            if len(over_budget) == 0:
                break
            if len(decisions) >= self.options.max_decisions:
                raise PlanningError(
                    f"{graph.name}: exceeded {self.options.max_decisions} "
                    f"planning decisions; giving up"
                )
            # Attack the earliest bottleneck with remaining candidates.
            # A later bottleneck may be reducible (e.g. by re-aligning a
            # backward region's split) even when the earliest one is
            # only a side effect of it.
            candidate = None
            bottleneck = int(over_budget[0])
            pool: list[Candidate] | None = (
                [] if recorder is not None else None
            )
            for step in over_budget:
                if pool is not None:
                    pool.clear()
                candidate = self._best_candidate(
                    cost_model, int(step), plan, tried, pool=pool,
                )
                if candidate is not None:
                    bottleneck = int(step)
                    break
            if candidate is None:
                raise PlanningError(
                    f"{graph.name}: memory bottleneck at op "
                    f"{graph.ops[schedule[bottleneck]].name!r} (step "
                    f"{bottleneck}, needs {format_bytes(curve[bottleneck])}, "
                    f"budget {format_bytes(budget)}) has no remaining "
                    f"candidates"
                )
            peak_before = int(curve.max()) if recorder is not None else 0
            old_configs = {
                tid: plan.config_for(tid) for tid, _ in candidate.configs
            }
            for tid, config in candidate.configs:
                plan.set(tid, config)
            tried.add(candidate.key)
            extra_time += candidate.delta_t
            decisions.append(candidate)
            if incremental:
                changed = [tid for tid, _ in candidate.configs]
                cost_model.refresh(plan, changed=changed)
                for tid, config in candidate.configs:
                    curve_state.apply(tid, old_configs[tid], config)
                curve = curve_state.values
            else:
                cost_model.refresh(plan)
                curve = simulate_memory(
                    graph, schedule, plan, cost_model.liveness,
                )
            if recorder is not None:
                recorder.record(
                    candidate,
                    step=bottleneck,
                    rejected=self._rejections(candidate, pool, tried),
                    peak_before=peak_before,
                    peak_after=int(curve.max()) if len(curve) else 0,
                )

        final_peak = int(curve.max()) if len(curve) else 0
        if recorder is not None:
            plan.explanation = recorder.finish(
                final_peak, baseline_time + extra_time,
            )
        return PlanResult(
            plan=plan,
            schedule=schedule,
            peak_memory=final_peak,
            baseline_peak=baseline_peak,
            estimated_time=baseline_time + extra_time,
            baseline_time=baseline_time,
            decisions=decisions,
        )

    def _best_candidate(
        self,
        cost_model: CostModel,
        bottleneck: int,
        plan: Plan,
        tried: set[tuple[frozenset, frozenset]],
        pool: list[Candidate] | None = None,
    ) -> Candidate | None:
        """Steps 1-3 of Algorithm 2: propose, compare, select.

        ``pool``, when given, receives every generated candidate
        (including cycle-guarded ones) for provenance recording; it
        never influences the selection.
        """
        best: Candidate | None = None
        step1 = cost_model.nonsplit_candidates(bottleneck, plan)
        step2 = cost_model.split_candidates(bottleneck, plan)
        step2b = cost_model.regen_candidates(bottleneck, plan)
        for candidate in step1 + step2 + step2b:
            if pool is not None:
                pool.append(candidate)
            if candidate.key in tried:
                continue
            if best is None or _better(candidate, best, self.options.ordering):
                best = candidate
        return best

    def _rejections(
        self,
        accepted: Candidate,
        pool: list[Candidate] | None,
        tried: set[tuple[frozenset, frozenset]],
    ) -> list[tuple[Candidate, str]]:
        """Pair each non-accepted pool candidate with its rejection reason."""
        if not pool:
            return []
        ordering = self.options.ordering
        rejected: list[tuple[Candidate, str]] = []
        for candidate in pool:
            if candidate is accepted:
                continue
            if candidate.key in tried and candidate.key != accepted.key:
                reason = "cycle guard: transition already applied"
            elif ordering == "ratio":
                reason = (
                    f"dT/dM {candidate.ratio:.3e} not better than "
                    f"accepted {accepted.ratio:.3e}"
                )
            else:
                reason = f"lost {ordering!r} victim-selection ordering"
            rejected.append((candidate, reason))
        return rejected


def _better(a: Candidate, b: Candidate, ordering: str = "ratio") -> bool:
    """Candidate ordering under the configured victim-selection rule."""
    if ordering == "largest":
        if a.delta_m != b.delta_m:
            return a.delta_m > b.delta_m
        return a.delta_t < b.delta_t
    if ordering == "fifo":
        if a.tensor_id != b.tensor_id:
            return a.tensor_id < b.tensor_id
        return a.ratio < b.ratio
    # The paper's greedy: smaller ΔT/ΔM wins; ties go to larger ΔM.
    if a.ratio != b.ratio:
        return a.ratio < b.ratio
    return a.delta_m > b.delta_m
