"""Numpy reference implementations of the forward operators.

Forward-only and deliberately simple: these exist to validate the
*splitting semantics* (a kernel run on micro-tensors must reproduce the
whole-tensor result), not to train models fast.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericsError
from repro.graph.graph import Graph
from repro.graph.ops import Operator, OpType, Phase
from repro.graph.tensor import TensorKind


def _conv2d(x: np.ndarray, w: np.ndarray, stride: int, padding: int) -> np.ndarray:
    """Direct NCHW convolution, accumulated per kernel offset."""
    out_c, _, kh, kw = w.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        )
    n = x.shape[0]
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, out_c, out_h, out_w), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, :, i:i + stride * out_h:stride,
                      j:j + stride * out_w:stride]
            out += np.einsum("nchw,oc->nohw", patch, w[:, :, i, j])
    return out


def _pool(x: np.ndarray, kernel: int, stride: int, padding: int,
          reduce_fn) -> np.ndarray:
    n, c, h, w = x.shape
    if padding:
        fill = -np.inf if reduce_fn is np.max else 0.0
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=fill,
        )
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, :, i * stride:i * stride + kernel,
                       j * stride:j * stride + kernel]
            out[:, :, i, j] = reduce_fn(window, axis=(2, 3))
    return out


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


class ReferenceExecutor:
    """Executes the forward phase of a graph on numpy arrays."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def run_forward(self, inputs: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Run every forward op; returns tensor id -> value for all tensors."""
        values = dict(inputs)
        for op in self.graph.ops.values():
            if op.phase is not Phase.FORWARD:
                continue
            self.run_op(op, values)
        return values

    def run_op(self, op: Operator, values: dict[int, np.ndarray]) -> None:
        """Execute one forward op, writing outputs into ``values``."""
        args = []
        for tid in op.inputs:
            if tid not in values:
                raise NumericsError(
                    f"op {op.name!r} input tensor {tid} has no value"
                )
            args.append(values[tid])
        outs = self._dispatch(op, args)
        for tid, value in zip(op.outputs, outs):
            expected = self.graph.tensors[tid].shape
            if tuple(value.shape) != expected:
                raise NumericsError(
                    f"op {op.name!r} produced shape {value.shape}, "
                    f"spec says {expected}"
                )
            values[tid] = value

    def _dispatch(self, op: Operator, args: list[np.ndarray]) -> list[np.ndarray]:
        kind = op.op_type
        if kind is OpType.CONV2D:
            return [_conv2d(args[0], args[1],
                            op.attrs["stride"], op.attrs["padding"])]
        if kind is OpType.MATMUL:
            x, w = args[0], args[1]
            if x.ndim == w.ndim == 3:  # attention matmuls handled upstream
                raise NumericsError("raw 3D matmul needs attention context")
            return [x @ w.T]
        if kind is OpType.RELU:
            return [np.maximum(args[0], 0.0)]
        if kind is OpType.GELU:
            x = args[0]
            return [0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x ** 3)))]
        if kind is OpType.ADD:
            return [args[0] + args[1]]
        if kind is OpType.POOL_MAX:
            return [_pool(args[0], op.attrs["kernel"], op.attrs["stride"],
                          op.attrs.get("padding", 0), np.max)]
        if kind is OpType.POOL_AVG:
            if len(self.graph.tensors[op.outputs[0]].shape) == 2:
                return [args[0].mean(axis=(2, 3))]
            return [_pool(args[0], op.attrs["kernel"], op.attrs["stride"],
                          op.attrs.get("padding", 0), np.mean)]
        if kind is OpType.SOFTMAX:
            return [_softmax(args[0])]
        if kind is OpType.DROPOUT:
            return [args[0]]  # identity: eval-mode semantics for equivalence
        if kind is OpType.RESHAPE:
            shape = self.graph.tensors[op.outputs[0]].shape
            return [args[0].reshape(shape)]
        if kind is OpType.CONCAT:
            return [np.concatenate(args, axis=op.attrs.get("axis", 1))]
        if kind is OpType.BATCHNORM:
            x = args[0]
            axes = tuple(i for i in range(x.ndim) if i != 1)
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            return [(x - mean) / np.sqrt(var + 1e-5)]
        if kind is OpType.LAYERNORM:
            x = args[0]
            mean = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            return [(x - mean) / np.sqrt(var + 1e-5)]
        if kind is OpType.EMBEDDING:
            ids, table = args
            return [table[ids.astype(np.int64)]]
        if kind is OpType.CROSS_ENTROPY:
            logits, labels = args
            probs = _softmax(logits.reshape(logits.shape[0], -1))
            index = labels.reshape(labels.shape[0], -1)[:, 0].astype(np.int64)
            index = np.clip(index, 0, probs.shape[1] - 1)
            picked = probs[np.arange(probs.shape[0]), index]
            return [-np.log(np.clip(picked, 1e-12, None))]
        raise NumericsError(f"no reference implementation for {kind.name}")


def random_inputs(graph: Graph, seed: int = 0) -> dict[int, np.ndarray]:
    """Random values for graph inputs and parameters."""
    rng = np.random.default_rng(seed)
    values: dict[int, np.ndarray] = {}
    for tensor in graph.tensors.values():
        if tensor.kind is TensorKind.INPUT:
            if tensor.dtype.type_name.startswith("int"):
                values[tensor.tensor_id] = rng.integers(
                    0, 7, size=tensor.shape,
                )
            else:
                values[tensor.tensor_id] = rng.standard_normal(
                    tensor.shape,
                ).astype(np.float64)
        elif tensor.kind is TensorKind.PARAM:
            values[tensor.tensor_id] = 0.1 * rng.standard_normal(
                tensor.shape,
            ).astype(np.float64)
    return values
