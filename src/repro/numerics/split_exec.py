"""Numeric validation of micro-tensor execution.

``run_split_op`` executes a single operator as ``p_num`` micro-kernels
along a named dimension and merges the pieces;
``split_equivalence_error`` compares that against whole-tensor execution.
A near-zero error is the correctness foundation of the sTensor split
primitive: any operator the capability table
(:func:`repro.core.split_rules.op_supports_split`) marks splittable must
pass this check.
"""

from __future__ import annotations

import numpy as np

from repro.core.split_rules import op_supports_split
from repro.errors import NumericsError
from repro.graph.graph import Graph
from repro.graph.ops import Operator, OpType
from repro.graph.tensor import DIM_PARAMETER, DIM_SAMPLE, TensorSpec
from repro.numerics.reference import ReferenceExecutor


def _split_array(
    value: np.ndarray, axis: int, p_num: int,
) -> list[np.ndarray]:
    return np.array_split(value, p_num, axis=axis)


def _axis_of(tensor: TensorSpec, dim: str) -> int | None:
    return tensor.split_axes.get(dim)


def run_split_op(
    graph: Graph,
    op: Operator,
    values: dict[int, np.ndarray],
    dim: str,
    p_num: int,
) -> dict[int, np.ndarray]:
    """Execute one op as micro-kernels; returns output id -> merged value.

    Inputs that expose the split dimension are sliced; others (weights,
    broadcast operands) are passed whole to every micro-kernel. Outputs
    are concatenated along their own split axis.

    Raises
    ------
    NumericsError
        If the operator does not support the dimension, or a micro-kernel
        output cannot be merged back.
    """
    if not op_supports_split(op.op_type, dim):
        raise NumericsError(
            f"op {op.name!r} ({op.op_type.name}) does not support "
            f"{dim!r}-dimension splitting"
        )
    executor = ReferenceExecutor(graph)

    input_pieces: dict[int, list[np.ndarray]] = {}
    for tid in op.inputs:
        tensor = graph.tensors[tid]
        axis = _axis_of(tensor, dim)
        value = values[tid]
        splittable = axis is not None and value.shape[axis] >= p_num
        if dim == DIM_PARAMETER and op.op_type in (OpType.CONV2D, OpType.MATMUL):
            # Channel-split conv/matmul splits the weight, not the input.
            from repro.graph.tensor import TensorKind

            if tensor.kind is TensorKind.PARAM:
                input_pieces[tid] = _split_array(value, 0, p_num)
                continue
            input_pieces[tid] = [value] * p_num
            continue
        if splittable:
            input_pieces[tid] = _split_array(value, axis, p_num)
        else:
            input_pieces[tid] = [value] * p_num

    merged: dict[int, list[np.ndarray]] = {tid: [] for tid in op.outputs}
    for index in range(p_num):
        scope = dict(values)
        for tid in op.inputs:
            scope[tid] = input_pieces[tid][index]
        # Shape checks are for the whole tensor; run the kernel manually.
        args = [scope[tid] for tid in op.inputs]
        outs = executor._dispatch(op, args)
        for tid, piece in zip(op.outputs, outs):
            merged[tid].append(piece)

    results: dict[int, np.ndarray] = {}
    for tid, pieces in merged.items():
        tensor = graph.tensors[tid]
        axis = _axis_of(tensor, dim)
        if axis is None:
            raise NumericsError(
                f"output {tensor.name!r} has no {dim!r} axis to merge on"
            )
        value = np.concatenate(pieces, axis=axis)
        if tuple(value.shape) != tensor.shape:
            raise NumericsError(
                f"merged output {tensor.name!r} has shape {value.shape}, "
                f"expected {tensor.shape}"
            )
        results[tid] = value
    return results


def split_equivalence_error(
    graph: Graph,
    op: Operator,
    values: dict[int, np.ndarray],
    dim: str = DIM_SAMPLE,
    p_num: int = 4,
) -> float:
    """Max |whole - split| over the op's outputs (should be ~0)."""
    executor = ReferenceExecutor(graph)
    whole_scope = dict(values)
    executor.run_op(op, whole_scope)
    split_out = run_split_op(graph, op, values, dim, p_num)
    error = 0.0
    for tid in op.outputs:
        error = max(
            error,
            float(np.max(np.abs(whole_scope[tid] - split_out[tid]))),
        )
    return error
