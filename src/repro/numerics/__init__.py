"""Numeric reference execution: proving split/merge semantics.

The simulator treats micro-tensor execution as equivalent to whole-tensor
execution; this package backs that assumption with real numbers. It
implements a small numpy reference for the forward operators, executes a
graph whole and as micro-tensors along a split dimension, and checks the
results agree — the correctness argument behind the sTensor abstraction.
"""

from repro.numerics.reference import ReferenceExecutor, random_inputs
from repro.numerics.split_exec import (
    run_split_op,
    split_equivalence_error,
)

__all__ = [
    "ReferenceExecutor",
    "random_inputs",
    "run_split_op",
    "split_equivalence_error",
]
