"""Program-level parallelism transforms: DP all-reduce, ZeRO sharding.

Both transforms rewrite an already-lowered instruction program — after
TSPLIT has co-planned split/swap/recompute for the rank — by splicing
:class:`~repro.runtime.instructions.CollectiveInstr` shares at the
points the parallelism scheme requires:

* **data-parallel** (:func:`splice_all_reduce`): every rank trains a
  full replica on ``batch / N`` samples; each parameter gradient is
  all-reduced in place right after its final producer, so the optimizer
  update (a later consumer of the gradient key) is automatically held
  until the collective completes;
* **ZeRO sharding** (:func:`splice_zero_shard`): parameters and
  optimizer state are sharded ``1/N`` per rank (persistent bytes drop
  accordingly); an all-gather materialises the missing ``(N-1)/N`` of a
  parameter just before each phase window that consumes it and frees it
  after; gradients are reduce-scattered — the full-size gradient buffer
  is retired by the collective and later consumers (the update, frees)
  are rewritten onto the ``1/N`` shard.

With ``world_size == 1`` both transforms return the program unchanged —
that degenerate case is the refactor's byte-identity safety net.
"""

from __future__ import annotations

import dataclasses

from repro.graph.graph import Graph
from repro.graph.ops import Phase
from repro.graph.tensor import TensorKind
from repro.runtime.instructions import (
    CollectiveInstr,
    ComputeInstr,
    FreeInstr,
    Instruction,
    Program,
    SwapInInstr,
    SwapOutInstr,
    TensorRef,
)


def _grad_tensors(graph: Graph) -> list[int]:
    """Parameter-gradient tensor ids consumed by update ops, op order."""
    grads: list[int] = []
    seen: set[int] = set()
    for op in graph.ops.values():
        if op.phase is not Phase.UPDATE:
            continue
        for tid in op.inputs:
            if (
                graph.tensors[tid].kind is TensorKind.GRAD_PARAM
                and tid not in seen
            ):
                seen.add(tid)
                grads.append(tid)
    return grads


def _final_refs(
    program: Program, tids: set[int],
) -> dict[int, tuple[int, tuple[TensorRef, ...]]]:
    """Last producer index and surviving refs of each tracked tensor.

    A split tensor's micro pieces are produced individually and replaced
    by the whole buffer at the merge, so "the refs alive after the final
    producer" is whatever the last producing instruction leaves behind:
    the whole ref after a merge, or the full set of micro refs when the
    plan keeps the tensor split.
    """
    live: dict[int, dict[tuple[int, int], TensorRef]] = {t: {} for t in tids}
    last: dict[int, int] = {}
    for idx, instr in enumerate(program.instructions):
        if not isinstance(instr, ComputeInstr):
            continue
        if instr.tag == "merge":
            for ref in instr.inputs:
                if ref.tensor_id in live:
                    live[ref.tensor_id].pop(ref.key, None)
        for ref in (*instr.outputs, *instr.finishes):
            if ref.tensor_id in live:
                live[ref.tensor_id][ref.key] = ref
                last[ref.tensor_id] = idx
    return {
        tid: (last[tid], tuple(live[tid].values()))
        for tid in tids if tid in last and live[tid]
    }


def _ref_keys(instr: Instruction) -> tuple[tuple[int, int], ...]:
    """Every storage key an instruction references."""
    if isinstance(instr, ComputeInstr):
        refs = (*instr.inputs, *instr.outputs, *instr.alloc_only,
                *instr.finishes)
    elif isinstance(instr, (SwapOutInstr, SwapInInstr, FreeInstr)):
        refs = (instr.ref,)
    elif isinstance(instr, CollectiveInstr):
        refs = (*instr.inputs, *instr.outputs, *instr.frees)
    else:
        refs = ()
    return tuple(ref.key for ref in refs)


def remap_refs(
    instr: Instruction, mapping: dict[tuple[int, int], TensorRef],
) -> Instruction:
    """Rewrite an instruction's tensor refs through ``mapping`` keys."""

    def one(ref: TensorRef) -> TensorRef:
        return mapping.get(ref.key, ref)

    def many(refs: tuple[TensorRef, ...]) -> tuple[TensorRef, ...]:
        return tuple(one(ref) for ref in refs)

    if isinstance(instr, ComputeInstr):
        return dataclasses.replace(
            instr,
            inputs=many(instr.inputs),
            outputs=many(instr.outputs),
            alloc_only=many(instr.alloc_only),
            finishes=many(instr.finishes),
        )
    if isinstance(instr, (SwapOutInstr, SwapInInstr, FreeInstr)):
        return dataclasses.replace(instr, ref=one(instr.ref))
    if isinstance(instr, CollectiveInstr):
        return dataclasses.replace(
            instr,
            inputs=many(instr.inputs),
            outputs=many(instr.outputs),
            frees=many(instr.frees),
        )
    return instr  # XferInstr.after are ordering markers, never storage


def _rebuild(
    program: Program,
    *,
    before: dict[int, list[Instruction]] | None = None,
    after: dict[int, list[Instruction]] | None = None,
    replace: dict[int, Instruction] | None = None,
    name: str = "",
    persistent_bytes: int | None = None,
) -> Program:
    """A new program with per-index insertions/replacements applied."""
    before = before or {}
    after = after or {}
    replace = replace or {}
    instructions: list[Instruction] = []
    for idx, instr in enumerate(program.instructions):
        instructions.extend(before.get(idx, ()))
        instructions.append(replace.get(idx, instr))
        instructions.extend(after.get(idx, ()))
    return Program(
        instructions=instructions,
        persistent_bytes=(
            program.persistent_bytes if persistent_bytes is None
            else persistent_bytes
        ),
        initial_host=list(program.initial_host),
        batch=program.batch,
        name=name or program.name,
    )


def splice_all_reduce(
    graph: Graph,
    program: Program,
    world_size: int,
    *,
    comm_start: int = 0,
) -> Program:
    """Data-parallel transform: all-reduce each parameter gradient.

    The collective is inserted immediately after the gradient's final
    producer with the gradient refs as in-place operands: the engine
    pushes their ready time to the collective's end, so the optimizer
    update — and any planned eviction of the gradient — waits for the
    reduction without any extra marker plumbing. ``comm_start`` offsets
    the ``comm_id`` sequence; every rank must use the same offset so the
    (identical) replica programs rendezvous.
    """
    if world_size <= 1:
        return program
    grads = _grad_tensors(graph)
    sites = _final_refs(program, set(grads))
    group = tuple(range(world_size))
    after: dict[int, list[Instruction]] = {}
    comm = comm_start
    for tid in grads:
        site = sites.get(tid)
        if site is None:
            continue
        idx, refs = site
        tensor = graph.tensors[tid]
        after.setdefault(idx, []).append(CollectiveInstr(
            kind="all_reduce",
            comm_id=comm,
            group=group,
            nbytes=tensor.size_bytes,
            label=f"all_reduce({tensor.name})",
            inputs=refs,
        ))
        comm += 1
    return _rebuild(
        program, after=after, name=f"{program.name}@dp{world_size}",
    )


def zero_shard_savings(graph: Graph, world_size: int) -> tuple[int, int]:
    """ZeRO sharding headroom: ``(persistent savings, max gather bytes)``.

    Savings are the persistent parameter + optimizer-state bytes a rank
    no longer holds (each keeps a ``ceil(size / N)`` shard); the second
    value is the largest transient all-gather buffer (the missing
    ``(N-1)/N`` of the biggest parameter), which the planner must keep
    headroom for. Plan against
    ``gpu.with_memory(memory + savings - max_gather)`` for a
    capacity-consistent single-GPU view of the sharded rank.
    """
    if world_size <= 1:
        return 0, 0
    savings = 0
    max_gather = 0
    for tensor in graph.tensors.values():
        if tensor.kind not in (TensorKind.PARAM, TensorKind.OPTIMIZER_STATE):
            continue
        size = tensor.size_bytes
        shard = -(-size // world_size)
        savings += size - shard
        if tensor.kind is TensorKind.PARAM:
            max_gather = max(max_gather, size - shard)
    return savings, max_gather


def splice_zero_shard(
    graph: Graph,
    program: Program,
    world_size: int,
    *,
    comm_start: int = 0,
) -> Program:
    """ZeRO transform: shard params + optimizer state, gather on demand.

    Persistent bytes drop by the sharded fraction. For every parameter,
    an ``all_gather`` materialising the missing ``(N-1)/N`` bytes is
    inserted before each phase window (forward; backward + recompute)
    that consumes it, gating the consumers through the gathered ref, and
    a free retires the gather buffer after the window. Each gradient is
    ``reduce_scatter``-ed at its final producer: the full-size buffer is
    retired by the collective and all later consumers are rewritten onto
    the ``1/N`` shard. Optimizer updates run on the shard — no gather.

    Parameters and optimizer state must be planned RESIDE (the shard is
    held, not swapped); :func:`repro.cluster.compiler.compile_cluster`
    sanitises plans accordingly.
    """
    if world_size <= 1:
        return program
    savings, _ = zero_shard_savings(graph, world_size)
    group = tuple(range(world_size))
    fresh = graph._next_tensor_id + 1  # noqa: SLF001 - id headroom
    comm = comm_start
    before: dict[int, list[Instruction]] = {}
    after: dict[int, list[Instruction]] = {}
    replace: dict[int, Instruction] = {}

    # Parameter gather windows. Persistent RESIDE params are untracked
    # (never appear in instruction refs), so consumers are found through
    # each instruction's graph op.
    consumers: dict[int, list[tuple[int, str]]] = {}
    for idx, instr in enumerate(program.instructions):
        if not isinstance(instr, ComputeInstr) or instr.op_id is None:
            continue
        if instr.tag not in ("forward", "backward", "recompute"):
            continue
        op = graph.ops.get(instr.op_id)
        if op is None:
            continue
        for tid in op.inputs:
            if graph.tensors[tid].kind is TensorKind.PARAM:
                consumers.setdefault(tid, []).append((idx, instr.tag))
    gates: dict[int, list[TensorRef]] = {}
    for tid in sorted(consumers):
        tensor = graph.tensors[tid]
        size = tensor.size_bytes
        missing = size - (-(-size // world_size))
        if missing <= 0:
            continue
        windows = [
            [i for i, tag in consumers[tid] if tag == "forward"],
            [i for i, tag in consumers[tid] if tag != "forward"],
        ]
        for window in windows:
            if not window:
                continue
            ref = TensorRef(fresh, missing, label=f"{tensor.name}/gather")
            fresh += 1
            before.setdefault(min(window), []).append(CollectiveInstr(
                kind="all_gather",
                comm_id=comm,
                group=group,
                nbytes=size,
                label=f"all_gather({tensor.name})",
                outputs=(ref,),
            ))
            comm += 1
            after.setdefault(max(window), []).append(
                FreeInstr(ref),
            )
            for i in window:
                gates.setdefault(i, []).append(ref)
    for idx, refs in gates.items():
        instr = program.instructions[idx]
        assert isinstance(instr, ComputeInstr)
        replace[idx] = dataclasses.replace(
            instr, inputs=(*instr.inputs, *refs),
        )

    # Gradient reduce-scatter at each gradient's final producer, with
    # later consumers rewritten onto the shard. A gradient's mapping
    # only activates past its own site — its producers keep writing the
    # full-size refs the collective retires.
    grads = _grad_tensors(graph)
    sites = _final_refs(program, set(grads))
    pending: list[tuple[int, dict[tuple[int, int], TensorRef]]] = []
    for tid in grads:
        site = sites.get(tid)
        if site is None:
            continue
        idx, refs = site
        tensor = graph.tensors[tid]
        size = tensor.size_bytes
        shard = TensorRef(
            fresh, -(-size // world_size), label=f"{tensor.name}/shard",
        )
        fresh += 1
        after.setdefault(idx, []).append(CollectiveInstr(
            kind="reduce_scatter",
            comm_id=comm,
            group=group,
            nbytes=size,
            label=f"reduce_scatter({tensor.name})",
            outputs=(shard,),
            frees=refs,
        ))
        comm += 1
        pending.append((idx, {ref.key: shard for ref in refs}))
    if pending:
        pending.sort(key=lambda site: site[0])
        active: dict[tuple[int, int], TensorRef] = {}
        nxt = 0
        for idx in range(pending[0][0] + 1, len(program.instructions)):
            while nxt < len(pending) and pending[nxt][0] < idx:
                active.update(pending[nxt][1])
                nxt += 1
            instr = replace.get(idx, program.instructions[idx])
            if any(key in active for key in _ref_keys(instr)):
                replace[idx] = remap_refs(instr, active)

    return _rebuild(
        program,
        before=before,
        after=after,
        replace=replace,
        name=f"{program.name}@zero{world_size}",
        persistent_bytes=program.persistent_bytes - savings,
    )
