"""Multi-rank parallelism: transforms, schedules, cluster compilation.

This package rewrites a single-GPU model graph into per-rank programs
joined by collective operations, then co-plans TSPLIT split/swap/
recompute per rank under each rank's memory budget:

* :mod:`repro.cluster.schedule` — the 1F1B pipeline micro-batch order;
* :mod:`repro.cluster.transforms` — program-level splices: data-parallel
  gradient all-reduce and multi-rank ZeRO parameter/gradient sharding;
* :mod:`repro.cluster.compiler` — :func:`~repro.cluster.compiler.
  compile_cluster`, the staged Profile → Plan → Lower pipeline applied
  per rank with rank-aware cache keys, producing programs for the
  :class:`~repro.runtime.cluster_engine.ClusterEngine`.
"""

from repro.cluster.compiler import ClusterCompiled, compile_cluster
from repro.cluster.schedule import bubble_fraction, one_f_one_b_order
from repro.cluster.transforms import splice_all_reduce, splice_zero_shard

__all__ = [
    "ClusterCompiled",
    "compile_cluster",
    "bubble_fraction",
    "one_f_one_b_order",
    "splice_all_reduce",
    "splice_zero_shard",
]
