"""Per-rank cluster compilation: Profile → Plan → Lower, times N ranks.

:func:`compile_cluster` is the multi-rank analogue of
:func:`repro.pipeline.compile.compile_run`. It rewrites one model
configuration into per-rank instruction programs for the
:class:`~repro.runtime.cluster_engine.ClusterEngine`, co-planning
TSPLIT's split/swap/recompute **independently per rank** under each
rank's memory budget — the DELTA observation that swap/recompute
decisions should stay per-device — while reusing the incremental
planner and the :class:`~repro.pipeline.cache.CompileCache` through
rank-aware cache keys (parallelism mode, world size and stage join the
plan-key payload via ``PlanStage(extra=...)``).

Three parallelism modes:

* ``"dp"`` — data parallel: every rank plans and runs a full replica on
  ``batch / N`` samples; gradients are all-reduced
  (:func:`~repro.cluster.transforms.splice_all_reduce`). With N=1 the
  program is byte-identical to the single-GPU pipeline's.
* ``"zero_shard"`` — data parallel plus multi-rank ZeRO sharding of
  parameters and optimizer state
  (:func:`~repro.cluster.transforms.splice_zero_shard`); each rank is
  planned against a capacity-consistent view of its sharded budget.
* ``"pp"`` — pipeline parallel: forward layers are partitioned into N
  contiguous stages balanced by profiled time, each stage's subgraph is
  planned and lowered separately at micro-batch size, and the per-rank
  program replays the stage chunk per micro-batch in 1F1B order with
  point-to-point sends/receives at stage boundaries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cluster.schedule import one_f_one_b_order
from repro.cluster.transforms import (
    _final_refs,
    remap_refs,
    splice_all_reduce,
    splice_zero_shard,
    zero_shard_savings,
)
from repro.core.augment import AugmentOptions
from repro.core.plan import MemOption, Plan
from repro.core.profiler import Profiler
from repro.errors import PlanningError
from repro.graph.graph import Graph
from repro.graph.ops import Phase
from repro.graph.tensor import TensorKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GPUSpec
from repro.models.registry import build_model
from repro.pipeline.cache import CompileCache
from repro.pipeline.stages import (
    LowerStage,
    PlanArtifact,
    PlanStage,
    ProfileArtifact,
    ProfileStage,
    default_augment_options,
    resolve_policy,
)
from repro.policies.base import MemoryPolicy
from repro.runtime.cluster_engine import ClusterEngine, ClusterTrace
from repro.runtime.engine import EngineOptions
from repro.runtime.instructions import (
    CollectiveInstr,
    ComputeInstr,
    FreeInstr,
    Instruction,
    Program,
    TensorRef,
)
from repro.runtime.observers import EngineObserver

MODES = ("dp", "zero_shard", "pp")

#: Tensor kinds shared across micro-batches in a pipeline stage program
#: (persistent, untracked) — never remapped per micro.
_SHARED_KINDS = frozenset(
    {TensorKind.PARAM, TensorKind.OPTIMIZER_STATE, TensorKind.INPUT},
)


@dataclass
class ClusterCompiled:
    """Per-rank programs plus the planning artifacts that produced them."""

    cluster: ClusterSpec
    mode: str
    batch: int
    programs: list[Program]
    plans: list[PlanArtifact]
    profiles: list[ProfileArtifact]
    #: Mode-specific numbers (ZeRO savings, pipeline stage spans, ...).
    meta: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return all(plan.feasible for plan in self.plans)

    @property
    def failure(self) -> str:
        """The first rank's planning error, or ``""`` when feasible."""
        for rank, plan in enumerate(self.plans):
            if not plan.feasible:
                return f"rank {rank}: {plan.error}"
        return ""

    def execute(
        self,
        engine_options: EngineOptions | None = None,
        observers: list[list[EngineObserver]] | None = None,
    ) -> ClusterTrace:
        """Run every rank's program under one global event clock."""
        if not self.feasible:
            raise PlanningError(
                f"cannot execute an infeasible cluster compile: {self.failure}"
            )
        engine = ClusterEngine(self.cluster, engine_options)
        return engine.execute(self.programs, observers=observers)

    def execute_iterations(
        self,
        iterations: int,
        engine_options: EngineOptions | None = None,
        observers: list[list[EngineObserver]] | None = None,
        boundary_hook=None,
    ) -> tuple[list[list[float]], ClusterTrace]:
        """Run every rank back to back, with optional rank-local replans.

        Thin passthrough to :meth:`~repro.runtime.cluster_engine.
        ClusterEngine.execute_iterations`; pair with a
        :class:`~repro.pipeline.replan.ClusterReplanController` to
        attach per-rank pressure monitors (``observers``) and rank-local
        replan decisions (``boundary_hook``).
        """
        if not self.feasible:
            raise PlanningError(
                f"cannot execute an infeasible cluster compile: {self.failure}"
            )
        engine = ClusterEngine(self.cluster, engine_options)
        return engine.execute_iterations(
            self.programs, iterations,
            observers=observers, boundary_hook=boundary_hook,
        )


def compile_cluster(
    model: str | Graph,
    batch: int,
    policy: MemoryPolicy | str,
    cluster: ClusterSpec,
    *,
    mode: str = "dp",
    micros: int | None = None,
    cache: CompileCache | None = None,
    param_scale: float = 1.0,
    augment_options: AugmentOptions | None = None,
    overrides: dict | None = None,
) -> ClusterCompiled:
    """Compile one model/policy configuration for an N-rank cluster.

    ``model`` is a registry name (built at the per-rank or per-micro
    batch size as the mode requires) or a pre-built graph only for
    ``world_size == 1``. ``micros`` is the pipeline micro-batch count
    (defaults to ``2 * world_size``); ignored outside ``mode="pp"``.
    Planning failures are carried in the returned artifacts
    (``compiled.feasible``), never raised.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    policy = resolve_policy(policy)
    world = cluster.world_size
    if mode == "pp":
        return _compile_pipeline(
            model, batch, policy, cluster,
            micros=micros, cache=cache, param_scale=param_scale,
            augment_options=augment_options, overrides=overrides,
        )
    if batch % world:
        raise ValueError(
            f"batch {batch} is not divisible by world size {world}"
        )
    graph = _build(model, batch // world, param_scale, overrides)
    extra = {"parallelism": mode, "world": world}
    sanitize = _ZERO_RESIDE_KINDS if mode == "zero_shard" else None
    savings, max_gather = (
        zero_shard_savings(graph, world) if mode == "zero_shard" else (0, 0)
    )

    programs: list[Program] = []
    plans: list[PlanArtifact] = []
    profiles: list[ProfileArtifact] = []
    by_gpu: dict[str, tuple[ProfileArtifact, PlanArtifact, Program | None]] = {}
    for gpu in cluster.gpus:
        token = f"{gpu.name}/{gpu.memory_bytes}"
        hit = by_gpu.get(token)
        if hit is None:
            plan_gpu = gpu
            if mode == "zero_shard":
                # Capacity-consistent single-GPU view of the sharded
                # rank: the planner sees full persistent tensors, so it
                # gets the sharding savings back as budget, minus
                # headroom for the largest transient gather buffer.
                plan_gpu = gpu.with_memory(
                    gpu.memory_bytes + savings - max_gather,
                )
            profile, plan, program = _compile_rank(
                graph, policy, gpu, plan_gpu, cache, extra,
                augment_options, sanitize,
            )
            if program is not None:
                if mode == "zero_shard":
                    program = splice_zero_shard(graph, program, world)
                else:
                    program = splice_all_reduce(graph, program, world)
            hit = by_gpu[token] = (profile, plan, program)
        profiles.append(hit[0])
        plans.append(hit[1])
        if hit[2] is not None:
            programs.append(hit[2])
    meta = {"per_rank_batch": batch // world}
    if mode == "zero_shard":
        meta["shard_savings_bytes"] = savings
        meta["max_gather_bytes"] = max_gather
    return ClusterCompiled(
        cluster=cluster, mode=mode, batch=batch,
        programs=programs if len(programs) == world else [],
        plans=plans, profiles=profiles, meta=meta,
    )


def _build(
    model: str | Graph, batch: int, param_scale: float, overrides: dict | None,
) -> Graph:
    if isinstance(model, Graph):
        return model
    return build_model(
        model, batch, param_scale=param_scale, **(overrides or {}),
    )


#: Plan sanitising kind sets per mode: ZeRO holds shards (persistent
#: tensors stay resident); pipeline replay additionally requires
#: gradients unsplit and resident across micro-batches.
_ZERO_RESIDE_KINDS = frozenset({
    TensorKind.PARAM, TensorKind.OPTIMIZER_STATE, TensorKind.GRAD_PARAM,
})
_PP_RESIDE_KINDS = _ZERO_RESIDE_KINDS


def _sanitize_plan(
    plan: Plan, graph: Graph, kinds: frozenset[TensorKind],
) -> Plan:
    """Force the given tensor kinds back to unsplit RESIDE.

    Cluster transforms own the lifecycle of these tensors (shards held
    on device, gradients accumulated across micro-batches), so per-rank
    planning is restricted to the remaining tensors — in practice the
    activations, which dominate and are what TSPLIT optimises.
    """
    if plan.cpu_update:
        raise PlanningError(
            "cluster transforms do not support CPU-update policies; "
            "use the single-GPU pipeline for zero_offload-style plans"
        )
    configs = {
        tid: config for tid, config in plan.configs.items()
        if not (
            graph.tensors[tid].kind in kinds
            and (config.opt is not MemOption.RESIDE or config.is_split)
        )
    }
    if len(configs) == len(plan.configs):
        return plan
    return dataclasses.replace(plan, configs=configs)


def _compile_rank(
    graph: Graph,
    policy: MemoryPolicy,
    gpu: GPUSpec,
    plan_gpu: GPUSpec,
    cache: CompileCache | None,
    extra: dict,
    augment_options: AugmentOptions | None,
    sanitize: frozenset[TensorKind] | None,
    keep_graph_order: bool = False,
) -> tuple[ProfileArtifact, PlanArtifact, Program | None]:
    """One rank's Profile → Plan → Lower with rank-aware plan keys.

    ``keep_graph_order`` pins the schedule to the graph's insertion
    order instead of the DFS order. Pipeline-stage subgraphs need this:
    boundary clones drop cross-stage dependencies, so a DFS reorder of
    the remaining ops can put a gradient accumulation ahead of the
    backward op whose result the *other* rank needs first — a lane-order
    cycle the receive markers then deadlock on. The insertion order is
    the full graph's topological order filtered to the stage, which
    every rank's lanes embed consistently.
    """
    profiler = Profiler(gpu)
    profile = ProfileStage(profiler).run(graph, gpu, cache=cache)
    if keep_graph_order:
        profile = dataclasses.replace(profile, schedule=list(graph.ops))
    plan_art = PlanStage(policy, extra=extra).run(
        graph, plan_gpu, profile, cache=cache,
    )
    if plan_art.plan is None:
        return profile, plan_art, None
    plan = plan_art.plan
    if sanitize is not None:
        try:
            plan = _sanitize_plan(plan, graph, sanitize)
        except PlanningError as exc:
            return profile, dataclasses.replace(
                plan_art, plan=None, error=str(exc),
            ), None
    options = default_augment_options(policy, augment_options)
    lowered = LowerStage(options).run(graph, plan, profile)
    return profile, plan_art, lowered.program.program


# -- pipeline parallelism ----------------------------------------------------


def _compile_pipeline(
    model: str | Graph,
    batch: int,
    policy: MemoryPolicy,
    cluster: ClusterSpec,
    *,
    micros: int | None,
    cache: CompileCache | None,
    param_scale: float,
    augment_options: AugmentOptions | None,
    overrides: dict | None,
) -> ClusterCompiled:
    world = cluster.world_size
    micros = micros if micros is not None else max(1, 2 * world)
    if batch % micros:
        raise ValueError(
            f"batch {batch} is not divisible by {micros} micro-batches"
        )
    graph = _build(model, batch // micros, param_scale, overrides)
    base_profile = ProfileStage(Profiler(cluster.gpus[0])).run(
        graph, cluster.gpus[0], cache=cache,
    )
    stage_of = _assign_stages(graph, world, base_profile)
    crossings = _boundary_crossings(graph, stage_of)
    # Which chunk a boundary transfer belongs to is decided by the
    # producing op's phase in the *full* graph — on the receiving rank
    # the clone has no producer.
    crossing_phase = {
        tid: graph.ops[graph.tensors[tid].producer].phase
        for tid, _, _ in crossings
    }

    programs: list[Program] = []
    plans: list[PlanArtifact] = []
    profiles: list[ProfileArtifact] = []
    stage_meta: list[dict] = []
    comm_ids = {
        (tid, dst, m): index
        for index, (tid, dst, m) in enumerate(
            (tid, dst, m)
            for tid, _, dst in crossings
            for m in range(micros)
        )
    }
    for rank, gpu in enumerate(cluster.gpus):
        sub, tid_map = _stage_subgraph(graph, stage_of, rank)
        extra = {
            "parallelism": "pp", "world": world,
            "stage": rank, "micros": micros,
        }
        profile, plan_art, stage_program = _compile_rank(
            sub, policy, gpu, gpu, cache, extra,
            augment_options, _PP_RESIDE_KINDS, keep_graph_order=True,
        )
        profiles.append(profile)
        plans.append(plan_art)
        if stage_program is None:
            continue
        program = _assemble_pipeline_rank(
            sub, stage_program, rank, world, micros,
            crossings, crossing_phase, tid_map, comm_ids,
        )
        program.batch = batch if rank == 0 else 0
        program.name = f"{graph.name}@pp{world}r{rank}"
        programs.append(program)
        stage_meta.append({
            "rank": rank,
            "ops": sum(1 for s in stage_of.values() if s == rank),
            "persistent_bytes": program.persistent_bytes,
        })
    return ClusterCompiled(
        cluster=cluster, mode="pp", batch=batch,
        programs=programs if len(programs) == world else [],
        plans=plans, profiles=profiles,
        meta={
            "micros": micros,
            "per_micro_batch": batch // micros,
            "stages": stage_meta,
            "boundaries": len(crossings),
        },
    )


def _assign_stages(
    graph: Graph, n_stages: int, profile: ProfileArtifact,
) -> dict[int, int]:
    """Assign every op to a stage: contiguous forward partition balanced
    by profiled forward time; backward/accum/update ops follow the
    forward op (or parameter) they belong to."""
    forward = [op for op in graph.ops.values() if op.phase is Phase.FORWARD]
    if len(forward) < n_stages:
        raise PlanningError(
            f"{graph.name}: {len(forward)} forward ops cannot fill "
            f"{n_stages} pipeline stages"
        )
    times = [profile.profile.op_time(op.op_id) for op in forward]
    total = sum(times) or 1.0
    stage_of: dict[int, int] = {}
    stage = 0
    acc = 0.0
    for index, op in enumerate(forward):
        remaining_ops = len(forward) - index
        remaining_stages = n_stages - stage
        # Advance when this stage has its time share, but never starve
        # later stages of ops.
        if (
            stage < n_stages - 1
            and acc >= total * (stage + 1) / n_stages
            and remaining_ops > remaining_stages - 1
        ):
            stage += 1
        stage_of[op.op_id] = stage
        acc += times[index]
    for op in graph.ops.values():
        if op.op_id in stage_of:
            continue
        if op.phase is Phase.BACKWARD:
            fwd = op.attrs.get("forward_op")
            if fwd is not None and fwd in stage_of:
                stage_of[op.op_id] = stage_of[fwd]
                continue
            stage_of[op.op_id] = _producer_stage(graph, op, stage_of)
        elif op.phase is Phase.UPDATE:
            stage_of[op.op_id] = _param_stage(graph, op, stage_of)
        else:
            stage_of[op.op_id] = _producer_stage(graph, op, stage_of)
    return stage_of


def _producer_stage(
    graph: Graph, op, stage_of: dict[int, int],
) -> int:
    for tid in op.inputs:
        producer = graph.tensors[tid].producer
        if producer is not None and producer in stage_of:
            return stage_of[producer]
    return max(stage_of.values(), default=0)


def _param_stage(graph: Graph, op, stage_of: dict[int, int]) -> int:
    param = op.attrs.get("param")
    if param is None and op.inputs:
        param = op.inputs[0]
    if param is not None:
        for consumer in graph.tensors[param].consumers:
            other = graph.ops[consumer]
            if other.phase is Phase.FORWARD and consumer in stage_of:
                return stage_of[consumer]
    return _producer_stage(graph, op, stage_of)


def _boundary_crossings(
    graph: Graph, stage_of: dict[int, int],
) -> list[tuple[int, int, int]]:
    """Stage-crossing tensors as ``(tensor_id, src_stage, dst_stage)``.

    Ordered by producing op (which is how sends appear on the source
    rank's lanes, keeping rendezvous order consistent with the
    receiver). Persistent tensors replicated into multiple stages don't
    cross — each stage holds its own copy.
    """
    crossings: list[tuple[int, int, int]] = []
    for op in graph.ops.values():
        src = stage_of[op.op_id]
        for tid in op.outputs:
            tensor = graph.tensors[tid]
            destinations = sorted({
                stage_of[consumer] for consumer in tensor.consumers
                if stage_of[consumer] != src
            })
            for dst in destinations:
                crossings.append((tid, src, dst))
    return crossings


def _stage_subgraph(
    graph: Graph, stage_of: dict[int, int], rank: int,
) -> tuple[Graph, dict[int, int]]:
    """Extract one stage's subgraph.

    Tensors produced by another stage but consumed here become
    INPUT-kind clones: persistent scalar charges whose arrival the
    point-to-point receive markers gate at run time. Op attrs that
    reference graph ids (``forward_op``, ``param``) are remapped.
    """
    sub = Graph(f"{graph.name}~s{rank}")
    tid_map: dict[int, int] = {}
    op_map: dict[int, int] = {}

    def clone_tensor(tid: int, crossing: bool) -> int:
        mapped = tid_map.get(tid)
        if mapped is not None:
            return mapped
        tensor = graph.tensors[tid]
        kind = TensorKind.INPUT if crossing else tensor.kind
        created = sub.add_tensor(
            tensor.name, tensor.shape, dtype=tensor.dtype, kind=kind,
            split_axes=tensor.split_axes,
        )
        tid_map[tid] = created.tensor_id
        return created.tensor_id

    for op in graph.ops.values():
        if stage_of[op.op_id] != rank:
            continue
        inputs = []
        for tid in op.inputs:
            producer = graph.tensors[tid].producer
            crossing = producer is not None and stage_of[producer] != rank
            inputs.append(clone_tensor(tid, crossing))
        outputs = [clone_tensor(tid, False) for tid in op.outputs]
        attrs = dict(op.attrs)
        if "forward_op" in attrs and attrs["forward_op"] in op_map:
            attrs["forward_op"] = op_map[attrs["forward_op"]]
        if "param" in attrs and attrs["param"] in tid_map:
            attrs["param"] = tid_map[attrs["param"]]
        cloned = sub.add_op(
            op.name, op.op_type, inputs, outputs,
            attrs=attrs, phase=op.phase, flops=op.flops,
            bytes_accessed=op.bytes_accessed,
            workspace_bytes=op.workspace_bytes,
        )
        op_map[op.op_id] = cloned.op_id
    return sub, tid_map


def _assemble_pipeline_rank(
    sub: Graph,
    stage_program: Program,
    rank: int,
    world: int,
    micros: int,
    crossings: list[tuple[int, int, int]],
    crossing_phase: dict[int, Phase],
    tid_map: dict[int, int],
    comm_ids: dict[tuple[int, int, int], int],
) -> Program:
    """Replay the stage chunk per micro-batch in 1F1B order.

    Non-persistent refs are remapped per micro so in-flight micro-batches
    never collide; parameter gradients accumulate into micro-0's buffers
    (later micros produce temporaries folded in by a zero-cost
    accumulation and freed); optimizer updates run once, in the last
    micro-batch. Boundary tensors ride point-to-point collectives on
    per-peer per-direction lanes: sends right after the producer,
    receives gating the chunk's first compute instruction.
    """
    kinds = {tid: tensor.kind for tid, tensor in sub.tensors.items()}
    stride = sub._next_tensor_id + 1  # noqa: SLF001 - remap headroom
    fresh = [stride * (micros + 1)]

    split = len(stage_program.instructions)
    for idx, instr in enumerate(stage_program.instructions):
        if isinstance(instr, ComputeInstr) and instr.tag == "backward":
            split = idx
            break
    f_chunk = stage_program.instructions[:split]
    b_chunk = stage_program.instructions[split:]

    grad_tids = {
        tid for tid, kind in kinds.items() if kind is TensorKind.GRAD_PARAM
    }
    b_program = Program(instructions=list(b_chunk))
    grad_sites = _final_refs(b_program, grad_tids)

    # Boundary wiring local to this rank, in producing-op order.
    outbound = [
        (tid, dst) for tid, src, dst in crossings if src == rank
    ]
    inbound = [
        (
            tid, src,
            sub.tensors[tid_map[tid]].size_bytes if tid in tid_map else 0,
        )
        for tid, src, dst in crossings if dst == rank
    ]
    forward_phase = crossing_phase
    f_sites = _final_refs(
        Program(instructions=list(f_chunk)),
        {tid_map[tid] for tid, _ in outbound if tid in tid_map},
    )
    b_out_sites = _final_refs(
        b_program,
        {tid_map[tid] for tid, _ in outbound if tid in tid_map},
    )

    instructions: list[Instruction] = []
    for kind_m, micro in one_f_one_b_order(world, rank, micros):
        if kind_m == "F":
            instructions.extend(_emit_chunk(
                sub, f_chunk, micro, micros, stride, kinds, grad_sites={},
                sites=f_sites, rank=rank, phase=Phase.FORWARD,
                outbound=outbound, inbound=inbound,
                forward_phase=forward_phase, tid_map=tid_map,
                comm_ids=comm_ids, fresh=fresh,
            ))
        else:
            instructions.extend(_emit_chunk(
                sub, b_chunk, micro, micros, stride, kinds,
                grad_sites=grad_sites,
                sites=b_out_sites, rank=rank, phase=Phase.BACKWARD,
                outbound=outbound, inbound=inbound,
                forward_phase=forward_phase, tid_map=tid_map,
                comm_ids=comm_ids, fresh=fresh,
            ))
    return Program(
        instructions=instructions,
        persistent_bytes=stage_program.persistent_bytes,
        initial_host=list(stage_program.initial_host),
        batch=stage_program.batch,
        name=stage_program.name,
    )


def _emit_chunk(
    sub: Graph,
    chunk: list[Instruction],
    micro: int,
    micros: int,
    stride: int,
    kinds: dict[int, TensorKind],
    *,
    grad_sites: dict[int, tuple[int, tuple[TensorRef, ...]]],
    sites: dict[int, tuple[int, tuple[TensorRef, ...]]],
    rank: int,
    phase: Phase,
    outbound: list[tuple[int, int]],
    inbound: list[tuple[int, int, int]],
    forward_phase: dict[int, Phase],
    tid_map: dict[int, int],
    comm_ids: dict[tuple[int, int, int], int],
    fresh: list[int],
) -> list[Instruction]:
    """One micro-batch instance of a stage chunk, fully wired."""
    last = micro == micros - 1

    def mapped(ref: TensorRef, *, to_base: bool = False) -> TensorRef:
        kind = kinds.get(ref.tensor_id)
        if kind in _SHARED_KINDS:
            return ref
        if micro == 0 or (to_base and kind is TensorKind.GRAD_PARAM):
            return ref
        return dataclasses.replace(
            ref, tensor_id=ref.tensor_id + micro * stride,
        )

    def remap(instr: Instruction, *, to_base: bool = False) -> Instruction:
        refs = {}
        for instr_ref in _instr_refs(instr):
            refs[instr_ref.key] = mapped(instr_ref, to_base=to_base)
        return remap_refs(instr, refs)

    sends: dict[int, list[Instruction]] = {}
    for tid, dst in outbound:
        if forward_phase.get(tid, Phase.FORWARD) is not phase:
            continue
        site = sites.get(tid_map.get(tid, -1))
        if site is None:
            continue
        idx, refs = site
        sends.setdefault(idx, []).append(CollectiveInstr(
            kind="send",
            comm_id=comm_ids[(tid, dst, micro)],
            group=(min(rank, dst), max(rank, dst)),
            nbytes=sum(ref.nbytes for ref in refs),
            label=f"send({refs[0].label or tid}->r{dst})#{micro}",
            inputs=tuple(mapped(ref) for ref in refs),
            # One lane per boundary tensor: distinct message streams
            # between a rank pair must never block behind each other
            # (forward activations vs backward gradients interleave
            # differently in the two ranks' 1F1B orders).
            lane=f"send:{dst}:t{tid}",
        ))

    recvs: list[Instruction] = []
    # Each receive marker gates the first in-chunk consumer of its
    # boundary tensor — gating the whole chunk would wedge mutually
    # dependent backward chunks (partial-gradient flows go both ways).
    gates: dict[int, list[TensorRef]] = {}
    for tid, src, nbytes in inbound:
        if forward_phase.get(tid, Phase.FORWARD) is not phase:
            continue
        marker = TensorRef(fresh[0], 0, label=f"recv(t{tid})#{micro}")
        fresh[0] += 1
        target = tid_map.get(tid)
        for idx, instr in enumerate(chunk):
            if (
                isinstance(instr, ComputeInstr)
                and instr.op_id is not None
                and target in sub.ops[instr.op_id].inputs
            ):
                gates.setdefault(idx, []).append(marker)
                break
        recvs.append(CollectiveInstr(
            kind="recv",
            comm_id=comm_ids[(tid, rank, micro)],
            group=(min(rank, src), max(rank, src)),
            nbytes=nbytes,
            label=f"recv(t{tid}<-r{src})#{micro}",
            outputs=(marker,),
            lane=f"recv:{src}:t{tid}",
        ))

    out: list[Instruction] = list(recvs)
    for idx, instr in enumerate(chunk):
        if phase is Phase.BACKWARD:
            if isinstance(instr, ComputeInstr) and instr.tag == "update":
                if not last:
                    continue
                emitted = remap(instr, to_base=True)
                markers = gates.get(idx)
                if markers:
                    emitted = dataclasses.replace(
                        emitted, inputs=(*emitted.inputs, *markers),
                    )
                out.append(emitted)
                out.extend(sends.get(idx, ()))
                continue
            if (
                isinstance(instr, FreeInstr)
                and kinds.get(instr.ref.tensor_id) is TensorKind.GRAD_PARAM
            ):
                # Gradient buffers live until the last micro's update;
                # temporaries get their own frees after accumulation.
                if last:
                    out.append(remap(instr, to_base=True))
                continue
        emitted = remap(instr)
        markers = gates.get(idx)
        if markers and isinstance(emitted, ComputeInstr):
            emitted = dataclasses.replace(
                emitted, inputs=(*emitted.inputs, *markers),
            )
        out.append(emitted)
        out.extend(sends.get(idx, ()))
        if micro > 0:
            for tid, (site_idx, refs) in grad_sites.items():
                if site_idx != idx:
                    continue
                for ref in refs:
                    temp = mapped(ref)
                    out.append(ComputeInstr(
                        label=f"grad_accum({ref.label})#{micro}",
                        duration=0.0,
                        inputs=(temp, ref),
                        tag="backward",
                    ))
                    out.append(FreeInstr(temp))
    return out


def _instr_refs(instr: Instruction) -> tuple[TensorRef, ...]:
    if isinstance(instr, ComputeInstr):
        return (*instr.inputs, *instr.outputs, *instr.alloc_only,
                *instr.finishes)
    if isinstance(instr, CollectiveInstr):
        return (*instr.inputs, *instr.outputs, *instr.frees)
    if isinstance(instr, FreeInstr):
        return (instr.ref,)
    ref = getattr(instr, "ref", None)
    return (ref,) if ref is not None else ()
