"""The 1F1B (one-forward-one-backward) pipeline schedule.

PipeDream-style non-interleaved 1F1B: each stage runs a warm-up of
forward micro-batches (deeper stages warm up less), then alternates one
forward with one backward in steady state, then drains the remaining
backwards. Relative to GPipe's all-forwards-then-all-backwards order it
bounds in-flight activations per stage at ``min(micros, n_stages -
rank)`` instead of ``micros``, which is what makes pipeline parallelism
composable with TSPLIT's per-rank memory planning.

The order is a pure function of ``(n_stages, rank, micros)`` so schedule
properties (bubble count, no overlapping micro-batches on one rank) are
testable without running the engine.
"""

from __future__ import annotations


def one_f_one_b_order(
    n_stages: int, rank: int, micros: int,
) -> list[tuple[str, int]]:
    """The 1F1B work order of one stage: ``[("F", m) | ("B", m), ...]``.

    Every stage emits exactly ``micros`` forwards and ``micros``
    backwards; backward ``m`` always follows forward ``m``; the warm-up
    depth ``min(micros, n_stages - 1 - rank)`` shrinks toward the last
    stage, which alternates from the first micro-batch.
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if not 0 <= rank < n_stages:
        raise ValueError(f"rank {rank} out of range for {n_stages} stages")
    if micros < 1:
        raise ValueError(f"micros must be >= 1, got {micros}")
    warmup = min(micros, n_stages - 1 - rank)
    order = [("F", m) for m in range(warmup)]
    forward, backward = warmup, 0
    while forward < micros or backward < micros:
        if forward < micros:
            order.append(("F", forward))
            forward += 1
        if backward < micros:
            order.append(("B", backward))
            backward += 1
    return order


def bubble_count(n_stages: int, rank: int, micros: int) -> int:
    """Warm-up slots this stage spends idle before its first forward.

    Stage ``rank`` cannot start micro-batch 0 until the ``rank``
    upstream stages have each forwarded it once — the leading edge of
    the pipeline bubble. By symmetry the same count drains at the tail,
    giving the classic ``(n_stages - 1)`` bubble per pipeline.
    """
    if not 0 <= rank < n_stages:
        raise ValueError(f"rank {rank} out of range for {n_stages} stages")
    if micros < 1:
        raise ValueError(f"micros must be >= 1, got {micros}")
    return rank


def bubble_fraction(n_stages: int, micros: int) -> float:
    """Ideal bubble fraction ``(S - 1) / (M + S - 1)`` of 1F1B.

    With uniform stage times the pipeline is busy for ``micros`` slots
    and idle for ``n_stages - 1`` fill/drain slots; real fractions come
    out higher when stages are imbalanced or communication-bound.
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if micros < 1:
        raise ValueError(f"micros must be >= 1, got {micros}")
    return (n_stages - 1) / (micros + n_stages - 1)
