"""Exception hierarchy for the TSPLIT reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. The hierarchy mirrors the major failure surfaces of the
system: graph construction, memory (simulated GPU OOM), planning, and
runtime execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Invalid dataflow-graph construction or inconsistent graph state."""


class ShapeError(GraphError):
    """Operator input shapes are incompatible with the operator contract."""


class SchedulingError(GraphError):
    """The graph cannot be scheduled (e.g. cycles, unreachable operators)."""


class HardwareError(ReproError):
    """Invalid hardware description or misuse of the hardware simulator."""


class OutOfMemoryError(HardwareError):
    """The simulated GPU ran out of device memory.

    Attributes
    ----------
    requested:
        Number of bytes whose allocation failed.
    available:
        Free bytes in the pool at the time of the failure.
    capacity:
        Total pool capacity in bytes.
    """

    def __init__(self, requested: int, available: int, capacity: int,
                 message: str | None = None) -> None:
        self.requested = requested
        self.available = available
        self.capacity = capacity
        if message is None:
            message = (
                f"simulated GPU out of memory: requested {requested} B, "
                f"available {available} B of {capacity} B"
            )
        super().__init__(message)


class AllocationError(HardwareError):
    """Invalid allocator usage (double free, unknown handle, ...)."""


class PlanningError(ReproError):
    """The planner could not produce a feasible plan.

    Raised by Algorithm 2 when a memory bottleneck remains and no candidate
    tensor/strategy can reduce it further (paper: "fail because of no more
    available tensors").
    """


class InfeasiblePlanError(PlanningError):
    """A specific plan was proven infeasible for the given device memory."""


class PolicyError(ReproError):
    """A memory policy cannot be applied to the given model.

    Used for the paper's "x" table entries, e.g. vDNN-conv on a Transformer
    (no convolution layers to offload).
    """


class RuntimeExecutionError(ReproError):
    """The runtime engine encountered an inconsistent execution state."""


class ProfilingError(ReproError):
    """Profiling could not measure or estimate an operator."""


class NumericsError(ReproError):
    """Numeric reference execution failed or diverged."""
