"""Experiment drivers: everything the evaluation section measures.

* :mod:`repro.analysis.runner` — plan + augment + execute one
  (model, policy, GPU) configuration.
* :mod:`repro.analysis.scaling` — max sample / parameter scale searches
  (Tables IV, V, VI, VII).
* :mod:`repro.analysis.throughput` — throughput sweeps
  (Figures 12, 13, 15).
* :mod:`repro.analysis.footprint` — memory-requirement curves
  (Figures 1, 2a, 4).
* :mod:`repro.analysis.distribution` — tensor-size histograms (Table II).
* :mod:`repro.analysis.breakdown` — strategy byte breakdowns and
  throughput-constrained scale (Figure 14).
* :mod:`repro.analysis.allocator_replay` — replay an execution's
  alloc/free sequence through the memory pool (allocator ablation).
"""

from repro.analysis.runner import EvalResult, evaluate, run_iterations, run_policy
from repro.analysis.scaling import (
    max_sample_scale,
    max_param_scale,
    scale_table,
)
from repro.analysis.throughput import throughput_sweep, SweepPoint
from repro.analysis.footprint import (
    model_memory_requirement,
    memory_requirement_grid,
    max_trainable_scale,
)
from repro.analysis.distribution import tensor_size_distribution, SIZE_BUCKETS
from repro.analysis.breakdown import (
    strategy_breakdown,
    max_scale_under_throughput,
)
from repro.analysis.allocator_replay import replay_allocations
from repro.analysis.oversubscription import (
    OversubscriptionPoint,
    oversubscription_sweep,
    survival_ratio,
)
from repro.analysis.report import (
    comparison_table,
    fault_recovery,
    memory_timeline,
    sparkline,
    stream_gantt,
    trace_report,
)

__all__ = [
    "EvalResult",
    "evaluate",
    "run_policy",
    "run_iterations",
    "max_sample_scale",
    "max_param_scale",
    "scale_table",
    "throughput_sweep",
    "SweepPoint",
    "model_memory_requirement",
    "memory_requirement_grid",
    "max_trainable_scale",
    "tensor_size_distribution",
    "SIZE_BUCKETS",
    "strategy_breakdown",
    "max_scale_under_throughput",
    "replay_allocations",
    "OversubscriptionPoint",
    "oversubscription_sweep",
    "survival_ratio",
    "comparison_table",
    "fault_recovery",
    "memory_timeline",
    "sparkline",
    "stream_gantt",
    "trace_report",
]
