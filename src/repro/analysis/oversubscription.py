"""Memory over-subscription sweeps.

The paper frames its headline results "under the same memory
over-subscription" — the ratio of a workload's unoptimised requirement
to the device capacity. This module fixes the workload and shrinks the
device, tracing each policy's throughput as over-subscription deepens:
where does it degrade, and where does it die? (The complementary view to
Tables IV/V, which fix the device and grow the workload.)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.parallel import parallel_map
from repro.analysis.runner import run_policy
from repro.graph.graph import Graph
from repro.graph.liveness import peak_memory
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache
from repro.policies.base import MemoryPolicy
from repro.runtime.engine import EngineOptions


@dataclass(frozen=True)
class OversubscriptionPoint:
    """One (policy, over-subscription ratio) measurement."""

    policy: str
    ratio: float          # requirement / capacity (>= 1 means pressure)
    capacity: int
    feasible: bool
    throughput: float
    slowdown_vs_full: float  # iteration time / unconstrained iteration time


def oversubscription_sweep(
    graph: Graph,
    policies: Sequence[str | MemoryPolicy],
    gpu: GPUSpec,
    ratios: Sequence[float] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0),
    *,
    parallel: int | bool | None = None,
    cache: CompileCache | None = None,
) -> list[OversubscriptionPoint]:
    """Measure each policy as the device shrinks below the requirement.

    ``ratio`` r means capacity = requirement / r: r=1 exactly fits the
    unoptimised execution, r=2 halves the device.

    The shrunk devices differ only in capacity, which the pipeline's
    profile keys ignore — with the shared ``cache`` the graph is
    profiled exactly once for the whole sweep, and each run re-plans
    against the cached profile.
    """
    requirement = peak_memory(graph, dfs_schedule(graph))
    options = EngineOptions(record_trace=False)
    if cache is None:
        cache = CompileCache()

    # Unconstrained reference time per policy (big enough device).
    big = gpu.with_memory(int(requirement * 1.2))

    def run_reference(policy: str | MemoryPolicy) -> tuple[str, float]:
        result = run_policy(
            graph, policy, big, engine_options=options, cache=cache,
        )
        name = policy if isinstance(policy, str) else policy.name
        return name, result.iteration_time

    reference = dict(parallel_map(run_reference, policies, parallel))

    def run_point(
        point: tuple[str | MemoryPolicy, float],
    ) -> OversubscriptionPoint:
        policy, ratio = point
        name = policy if isinstance(policy, str) else policy.name
        capacity = max(1, int(requirement / ratio))
        shrunk = gpu.with_memory(capacity)
        result = run_policy(
            graph, policy, shrunk, engine_options=options, cache=cache,
        )
        slowdown = (
            result.iteration_time / reference[name]
            if result.feasible and reference[name] not in (0.0, float("inf"))
            else float("inf")
        )
        return OversubscriptionPoint(
            policy=name,
            ratio=ratio,
            capacity=capacity,
            feasible=result.feasible,
            throughput=result.throughput,
            slowdown_vs_full=slowdown,
        )

    grid = [(policy, ratio) for policy in policies for ratio in ratios]
    return parallel_map(run_point, grid, parallel)


def survival_ratio(
    points: list[OversubscriptionPoint], policy: str,
) -> float:
    """Deepest over-subscription ratio a policy survived (0 if none)."""
    feasible = [p.ratio for p in points if p.policy == policy and p.feasible]
    return max(feasible, default=0.0)
