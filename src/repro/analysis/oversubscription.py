"""Memory over-subscription sweeps.

The paper frames its headline results "under the same memory
over-subscription" — the ratio of a workload's unoptimised requirement
to the device capacity. This module fixes the workload and shrinks the
device, tracing each policy's throughput as over-subscription deepens:
where does it degrade, and where does it die? (The complementary view to
Tables IV/V, which fix the device and grow the workload.)
"""

from __future__ import annotations

import functools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.parallel import parallel_map, resolve_backend
from repro.analysis.sweep_tasks import (
    OversubscriptionReferenceSpec,
    OversubscriptionTaskSpec,
    resolve_sweep_cache,
    run_oversubscription_point,
    run_oversubscription_reference,
)
from repro.graph.graph import Graph
from repro.graph.liveness import peak_memory
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache
from repro.policies.base import MemoryPolicy


@dataclass(frozen=True)
class OversubscriptionPoint:
    """One (policy, over-subscription ratio) measurement."""

    policy: str
    ratio: float          # requirement / capacity (>= 1 means pressure)
    capacity: int
    feasible: bool
    throughput: float
    slowdown_vs_full: float  # iteration time / unconstrained iteration time


def oversubscription_sweep(
    graph: Graph,
    policies: Sequence[str | MemoryPolicy],
    gpu: GPUSpec,
    ratios: Sequence[float] = (1.0, 1.25, 1.5, 2.0, 3.0, 4.0),
    *,
    parallel: int | bool | None = None,
    backend: str | None = None,
    cache: CompileCache | None = None,
    cache_dir: str | None = None,
) -> list[OversubscriptionPoint]:
    """Measure each policy as the device shrinks below the requirement.

    ``ratio`` r means capacity = requirement / r: r=1 exactly fits the
    unoptimised execution, r=2 halves the device.

    The shrunk devices differ only in capacity, which the pipeline's
    profile keys ignore — with the shared ``cache`` (thread/serial
    backends) the graph is profiled exactly once for the whole sweep and
    each run re-plans against the cached profile; ``backend="process"``
    gets the same sharing through the ``cache_dir`` disk tier (the graph
    travels to the workers by pickle).
    """
    requirement = peak_memory(graph, dfs_schedule(graph))
    backend = resolve_backend(backend, parallel)
    cache = resolve_sweep_cache(backend, cache, cache_dir)

    def name_of(policy: str | MemoryPolicy) -> str:
        return policy if isinstance(policy, str) else policy.name

    # Unconstrained reference time per policy (big enough device).
    big_capacity = int(requirement * 1.2)
    reference_specs = [
        OversubscriptionReferenceSpec(
            graph=graph, policy=policy, capacity=big_capacity,
            gpu=gpu, cache_dir=cache_dir,
        )
        for policy in policies
    ]
    reference_fn = (
        run_oversubscription_reference
        if cache is None
        else functools.partial(run_oversubscription_reference, cache=cache)
    )
    reference = dict(
        parallel_map(reference_fn, reference_specs, parallel, backend=backend)
    )

    specs = [
        OversubscriptionTaskSpec(
            graph=graph,
            policy=policy,
            ratio=ratio,
            capacity=max(1, int(requirement / ratio)),
            gpu=gpu,
            reference_time=reference[name_of(policy)],
            cache_dir=cache_dir,
        )
        for policy in policies
        for ratio in ratios
    ]
    fn = (
        run_oversubscription_point
        if cache is None
        else functools.partial(run_oversubscription_point, cache=cache)
    )
    return parallel_map(fn, specs, parallel, backend=backend)


def survival_ratio(
    points: list[OversubscriptionPoint], policy: str,
) -> float:
    """Deepest over-subscription ratio a policy survived (0 if none)."""
    feasible = [p.ratio for p in points if p.policy == policy and p.feasible]
    return max(feasible, default=0.0)
