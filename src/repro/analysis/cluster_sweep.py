"""Cluster sweeps: rank-count scaling as picklable task specs.

Mirrors :mod:`repro.analysis.sweep_tasks`: every point of a cluster
sweep is a frozen :class:`ClusterPointSpec` naming the model, the
parallelism mode and the cluster shape — never a closure — and
:func:`run_cluster_point` executes one spec at module level. Both halves
pickle, so the serial, thread and process backends of
:func:`cluster_sweep` produce byte-identical point lists
(``canonical_point_bytes`` compares them in tests and benchmarks).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.analysis.parallel import parallel_map
from repro.analysis.sweep_tasks import resolve_sweep_cache, worker_cache
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache


@dataclass(frozen=True)
class ClusterPointSpec:
    """One (mode, world size) cluster simulation point, by name."""

    model: str
    policy: str
    batch: int
    gpu: GPUSpec
    world: int
    mode: str = "dp"
    micros: int | None = None
    link: str = "nvlink"
    param_scale: float = 1.0
    cache_dir: str | None = None


@dataclass(frozen=True)
class ClusterPoint:
    """The flattened outcome of one cluster simulation point."""

    model: str
    policy: str
    mode: str
    world: int
    batch: int
    feasible: bool
    makespan: float = 0.0
    throughput: float = 0.0
    per_rank_peak: tuple[int, ...] = ()
    comm_busy: tuple[float, ...] = ()
    collective_bytes: tuple[int, ...] = ()
    failure: str = ""


def run_cluster_point(
    spec: ClusterPointSpec, cache: CompileCache | None = None,
) -> ClusterPoint:
    """Compile and execute one cluster point; never raises on OOM."""
    from repro.cluster import compile_cluster
    from repro.errors import OutOfMemoryError
    from repro.hardware.cluster import ClusterSpec

    if cache is None:
        cache = worker_cache(spec.cache_dir)
    cluster = ClusterSpec.homogeneous(spec.gpu, spec.world, link=spec.link)
    compiled = compile_cluster(
        spec.model, spec.batch, spec.policy, cluster,
        mode=spec.mode, micros=spec.micros, cache=cache,
        param_scale=spec.param_scale,
    )
    if not compiled.feasible:
        return ClusterPoint(
            model=spec.model, policy=spec.policy, mode=spec.mode,
            world=spec.world, batch=spec.batch, feasible=False,
            failure=compiled.failure,
        )
    try:
        trace = compiled.execute()
    except OutOfMemoryError as exc:
        # Policies without a planning-time capacity check (e.g. base)
        # surface infeasibility at run time; report it like evaluate().
        return ClusterPoint(
            model=spec.model, policy=spec.policy, mode=spec.mode,
            world=spec.world, batch=spec.batch, feasible=False,
            failure=str(exc),
        )
    return ClusterPoint(
        model=spec.model, policy=spec.policy, mode=spec.mode,
        world=spec.world, batch=spec.batch, feasible=True,
        makespan=trace.makespan, throughput=trace.throughput,
        per_rank_peak=tuple(trace.per_rank_peak),
        comm_busy=tuple(trace.comm_busy),
        collective_bytes=tuple(trace.collective_bytes),
    )


@dataclass(frozen=True)
class ClusterSweepResult:
    """All points of one cluster sweep, in spec order."""

    points: list[ClusterPoint] = field(default_factory=list)

    def feasible(self) -> list[ClusterPoint]:
        """The points that compiled and executed."""
        return [point for point in self.points if point.feasible]


def cluster_sweep(
    model: str,
    policy: str,
    gpu: GPUSpec,
    batch: int,
    *,
    worlds: tuple[int, ...] = (1, 2, 4),
    modes: tuple[str, ...] = ("dp",),
    micros: int | None = None,
    link: str = "nvlink",
    param_scale: float = 1.0,
    parallel: int | bool | None = None,
    backend: str | None = None,
    cache: CompileCache | None = None,
    cache_dir: str | None = None,
) -> ClusterSweepResult:
    """Sweep rank counts (and modes) for one model/policy configuration.

    Points run through :func:`~repro.analysis.parallel.parallel_map`,
    so ``backend`` may be ``"serial"``, ``"thread"`` or ``"process"``;
    result order always matches the ``modes`` × ``worlds`` spec order.
    """
    resolved = resolve_sweep_cache(
        backend or ("thread" if parallel else "serial"), cache, cache_dir,
    )
    specs = [
        ClusterPointSpec(
            model=model, policy=policy, batch=batch, gpu=gpu,
            world=world, mode=mode, micros=micros, link=link,
            param_scale=param_scale, cache_dir=cache_dir,
        )
        for mode in modes
        for world in worlds
    ]
    if resolved is not None:
        fn = functools.partial(run_cluster_point, cache=resolved)
    else:
        fn = run_cluster_point
    points = parallel_map(fn, specs, parallel, backend=backend)
    return ClusterSweepResult(points=points)
