"""Shared fan-out helper for the analysis sweeps.

Sweep points are independent (graph build + compile + simulated
execution per point), so the sweeps expose ``parallel=`` / ``backend=``
knobs and fan out over a worker pool. Two pools are available, and the
distinction matters because the planner and the discrete-event engine
are **pure Python** — the GIL serialises them in threads:

* ``backend="thread"`` shares one in-memory
  :class:`~repro.pipeline.CompileCache` by reference, so it is the right
  choice when most points are cache hits (re-plans against a warm
  profile) or when point work is dominated by the blocking IO of a
  disk-backed cache. Compute-bound points do **not** overlap.
* ``backend="process"`` sidesteps the GIL entirely and is the right
  choice for compute-bound sweeps (cold profiling + planning). Worker
  processes cannot share memory, so the per-point callable and its items
  must be picklable (:mod:`repro.analysis.sweep_tasks` provides
  registry-name task specs) and cache sharing goes through the
  persistent disk tier (``cache_dir=``).
* ``backend="serial"`` runs the plain list comprehension.

Result order always matches input order and the per-point computation is
deterministic, so all three backends produce byte-identical point lists.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

BACKENDS = ("serial", "thread", "process")

#: Environment override capping every resolved worker count (useful on
#: shared CI machines where ``os.cpu_count()`` over-reports).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def _max_workers_cap() -> int | None:
    """The ``REPRO_MAX_WORKERS`` cap, or ``None`` when unset/invalid."""
    raw = os.environ.get(MAX_WORKERS_ENV)
    if not raw:
        return None
    try:
        cap = int(raw)
    except ValueError:
        return None
    return cap if cap >= 1 else None


def resolve_workers(parallel: int | bool | None, n_items: int) -> int:
    """Worker count for a ``parallel=`` setting.

    ``None``/``False``/``0``/``1`` mean serial; ``True`` uses the full
    machine (``os.cpu_count()``); an integer caps the pool. Never more
    workers than items, and the ``REPRO_MAX_WORKERS`` environment
    variable, when set, caps every resolved count.
    """
    if not parallel or n_items <= 1:
        return 1
    if parallel is True:
        workers = os.cpu_count() or 4
    else:
        workers = int(parallel)
    cap = _max_workers_cap()
    if cap is not None:
        workers = min(workers, cap)
    return max(1, min(workers, n_items))


def resolve_backend(
    backend: str | None, parallel: int | bool | None,
) -> str:
    """Normalise a ``backend=`` setting against the ``parallel=`` knob.

    ``None`` keeps the historical behaviour: threads when ``parallel``
    asks for workers, serial otherwise. An explicit backend name is
    validated against :data:`BACKENDS`.
    """
    if backend is None:
        return "thread" if parallel else "serial"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def _check_picklable(fn: Callable, items: Sequence) -> None:
    """Fail fast (and helpfully) before handing work to child processes."""
    try:
        pickle.dumps(fn)
        if items:
            pickle.dumps(items[0])
    except Exception as exc:
        raise ValueError(
            "backend='process' requires a picklable task function and "
            "picklable task specs (module-level functions and registry "
            "model/policy names, not closures or local callables); "
            f"pickling failed with: {exc}"
        ) from exc


def parallel_map(
    fn: Callable,
    items: Iterable,
    parallel: int | bool | None = None,
    *,
    backend: str | None = None,
) -> list:
    """``[fn(x) for x in items]``, optionally across a worker pool.

    ``backend`` selects the pool (:data:`BACKENDS`); ``None`` means
    threads when ``parallel`` is set, serial otherwise. Result order
    always matches input order, so every backend produces identical
    point lists.
    """
    items = items if isinstance(items, Sequence) else list(items)
    backend = resolve_backend(backend, parallel)
    workers = resolve_workers(parallel, len(items))
    if backend == "serial" or workers <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    _check_picklable(fn, items)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
