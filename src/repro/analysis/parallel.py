"""Shared fan-out helper for the analysis sweeps.

Sweep points are independent (graph build + compile + simulated
execution per point), so the sweeps expose a ``parallel=`` knob and fan
out over threads. Threads — not processes — because model builders and
policies are passed as arbitrary callables (often closures, not
picklable) and the shared :class:`~repro.pipeline.CompileCache` must be
shared by reference; NumPy-heavy simulation releases enough of the GIL
for useful overlap.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor


def resolve_workers(parallel: int | bool | None, n_items: int) -> int:
    """Worker count for a ``parallel=`` setting.

    ``None``/``False``/``0``/``1`` mean serial; ``True`` picks a default
    from the CPU count; an integer caps the pool. Never more workers
    than items.
    """
    if not parallel or n_items <= 1:
        return 1
    if parallel is True:
        workers = min(8, os.cpu_count() or 4)
    else:
        workers = int(parallel)
    return max(1, min(workers, n_items))


def parallel_map(
    fn: Callable,
    items: Iterable,
    parallel: int | bool | None = None,
) -> list:
    """``[fn(x) for x in items]``, optionally across a thread pool.

    Result order always matches input order, so serial and parallel
    sweeps produce identical point lists.
    """
    items = items if isinstance(items, Sequence) else list(items)
    workers = resolve_workers(parallel, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
