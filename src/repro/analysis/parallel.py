"""Shared fan-out helper for the analysis sweeps.

Sweep points are independent (graph build + compile + simulated
execution per point), so the sweeps expose ``parallel=`` / ``backend=``
knobs and fan out over a worker pool. Two pools are available, and the
distinction matters because the planner and the discrete-event engine
are **pure Python** — the GIL serialises them in threads:

* ``backend="thread"`` shares one in-memory
  :class:`~repro.pipeline.CompileCache` by reference, so it is the right
  choice when most points are cache hits (re-plans against a warm
  profile) or when point work is dominated by the blocking IO of a
  disk-backed cache. Compute-bound points do **not** overlap.
* ``backend="process"`` sidesteps the GIL entirely and is the right
  choice for compute-bound sweeps (cold profiling + planning). Worker
  processes cannot share memory, so the per-point callable and its items
  must be picklable (:mod:`repro.analysis.sweep_tasks` provides
  registry-name task specs) and cache sharing goes through the
  persistent disk tier (``cache_dir=``).
* ``backend="serial"`` runs the plain list comprehension.

Result order always matches input order and the per-point computation is
deterministic, so all three backends produce byte-identical point lists.
"""

from __future__ import annotations

import contextvars
import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager

BACKENDS = ("serial", "thread", "process")

#: Environment override capping every resolved worker count (useful on
#: shared CI machines where ``os.cpu_count()`` over-reports). When a
#: :func:`worker_budget` context is active the cap is treated as a
#: *machine-wide* budget: the budget carves each concurrent caller's
#: share out of it rather than granting the full cap to everyone.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Context-local worker budget (``None`` = unbudgeted). Set by layers
#: that multiplex many concurrent sweeps over one machine — the serve
#: daemon enters :func:`worker_budget` around each request so N
#: concurrent ``backend="process"`` sweeps cannot each claim the whole
#: ``REPRO_MAX_WORKERS`` cap and oversubscribe N × cap workers.
_WORKER_BUDGET: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_worker_budget", default=None,
)


def _max_workers_cap() -> int | None:
    """The ``REPRO_MAX_WORKERS`` cap, or ``None`` when unset/invalid."""
    raw = os.environ.get(MAX_WORKERS_ENV)
    if not raw:
        return None
    try:
        cap = int(raw)
    except ValueError:
        return None
    return cap if cap >= 1 else None


def active_worker_budget() -> int | None:
    """The context's worker budget, or ``None`` when unbudgeted."""
    return _WORKER_BUDGET.get()


@contextmanager
def worker_budget(budget: int | None):
    """Scope a worker budget over the calling context.

    Every :func:`resolve_workers` call made while the context is active
    (including deep inside a sweep) resolves at most ``budget`` workers,
    regardless of what ``parallel=`` asked for. Budgets compose by
    shrinking: entering a smaller budget inside a larger one tightens
    the cap, entering a larger one does not loosen it. ``None`` is a
    no-op scope (useful for optional plumbing).

    This is the hook pool-like layers use to treat the machine — not
    each request — as the unit of provisioning: a server with W request
    slots enters ``worker_budget(machine_cap // W)`` around each
    request, so W concurrent sweeps collectively stay within the
    machine cap instead of oversubscribing W × cap workers.
    """
    if budget is not None:
        budget = max(1, int(budget))
        current = _WORKER_BUDGET.get()
        if current is not None:
            budget = min(budget, current)
    token = _WORKER_BUDGET.set(budget)
    try:
        yield budget
    finally:
        _WORKER_BUDGET.reset(token)


def resolve_workers(
    parallel: int | bool | None,
    n_items: int,
    *,
    budget: int | None = None,
) -> int:
    """Worker count for a ``parallel=`` setting.

    ``None``/``False``/``0``/``1`` mean serial; ``True`` uses the full
    machine (``os.cpu_count()``); an integer caps the pool. Never more
    workers than items, and the ``REPRO_MAX_WORKERS`` environment
    variable, when set, caps every resolved count.

    ``budget`` (explicit argument, or the enclosing
    :func:`worker_budget` context when the argument is ``None``) caps
    the count further: it is the caller's *share* of the machine when
    several sweeps run concurrently, so the environment cap holds
    machine-wide instead of per-sweep.
    """
    if not parallel or n_items <= 1:
        return 1
    if parallel is True:
        workers = os.cpu_count() or 4
    else:
        workers = int(parallel)
    cap = _max_workers_cap()
    if cap is not None:
        workers = min(workers, cap)
    if budget is None:
        budget = _WORKER_BUDGET.get()
    if budget is not None:
        workers = min(workers, max(1, int(budget)))
    return max(1, min(workers, n_items))


def resolve_backend(
    backend: str | None, parallel: int | bool | None,
) -> str:
    """Normalise a ``backend=`` setting against the ``parallel=`` knob.

    ``None`` keeps the historical behaviour: threads when ``parallel``
    asks for workers, serial otherwise. An explicit backend name is
    validated against :data:`BACKENDS`.
    """
    if backend is None:
        return "thread" if parallel else "serial"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def _check_picklable(fn: Callable, items: Sequence) -> None:
    """Fail fast (and helpfully) before handing work to child processes.

    Probes the task function plus **one item per distinct item type** —
    a heterogeneous spec list (say, dataclass specs with one stray
    closure-holding entry) used to pass a first-item-only probe and
    then die deep inside the pool with an opaque ``PicklingError``; the
    per-type probe stays cheap (one ``pickle.dumps`` per type, not per
    item) while naming the failing index and type.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise ValueError(
            "backend='process' requires a picklable task function "
            "(a module-level function, not a closure or local "
            f"callable); pickling {fn!r} failed with: {exc}"
        ) from exc
    probed: set[type] = set()
    for index, item in enumerate(items):
        item_type = type(item)
        if item_type in probed:
            continue
        probed.add(item_type)
        try:
            pickle.dumps(item)
        except Exception as exc:
            raise ValueError(
                "backend='process' requires picklable task specs "
                "(registry model/policy names, not closures or local "
                f"callables); item {index} of type {item_type.__name__} "
                f"failed to pickle with: {exc}"
            ) from exc


def parallel_map(
    fn: Callable,
    items: Iterable,
    parallel: int | bool | None = None,
    *,
    backend: str | None = None,
) -> list:
    """``[fn(x) for x in items]``, optionally across a worker pool.

    ``backend`` selects the pool (:data:`BACKENDS`); ``None`` means
    threads when ``parallel`` is set, serial otherwise. Result order
    always matches input order, so every backend produces identical
    point lists.
    """
    items = items if isinstance(items, Sequence) else list(items)
    backend = resolve_backend(backend, parallel)
    workers = resolve_workers(parallel, len(items))
    if backend == "serial" or workers <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    _check_picklable(fn, items)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
