"""Memscope: an allocation-level memory observatory with OOM forensics.

The engine accounts device memory in bytes (the
:class:`~repro.hardware.memory_pool.DeviceMemoryLedger` has no
addresses), so scalar peaks say nothing about *placement*: which tensors
fence the holes, whether an OOM was capacity or external fragmentation,
what the minimal eviction set would have been. Memscope answers those
questions by driving a **shadow** :class:`~repro.hardware.memory_pool.
MemoryPool` from the engine's observer callbacks:

* :class:`MemscopeObserver` replays every ``on_alloc``/``on_free`` event
  through a shadow pool carrying a :class:`~repro.hardware.memory_pool.
  PoolRecorder`, so each allocation gets a concrete address range and
  birth/death event-clock times — without touching engine state, which
  keeps the executed plan and trace byte-identical to an unobserved run;
* :class:`AddressSpaceTimeline` assembles the provenance into
  address x time occupancy rectangles, exportable as Perfetto counter
  tracks (mergeable with engine/pipeline traces via
  :func:`~repro.telemetry.chrome.merge_traces`) and JSON heatmaps;
* :func:`tensor_residency` rolls the records up into per-tensor
  analytics (time resident, eviction/prefetch counts, PCIe bytes,
  attributable stall time);
* :func:`analyze_failed_alloc` is the OOM postmortem: it classifies a
  failed allocation as ``capacity`` vs ``fragmentation`` (sum of free
  bytes >= request but no hole fits), names the resident tensors fencing
  the largest holes, and computes the minimal eviction set that would
  have admitted the request.

The occupancy samples use the ``used`` values the engine's ledger
delivers through the callbacks, so the exported counter track agrees
with the ledger (and :class:`~repro.runtime.observers.
MemoryTimelineObserver`) at every event by construction; the shadow
pool's own byte count differs by alignment padding and is reported
separately as pool statistics.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError
from repro.hardware.memory_pool import (
    PERSISTENT_LABEL,
    AllocationRecord,
    MemoryPool,
    PoolRecorder,
    PoolSnapshot,
    _align,
)
from repro.runtime.observers import EngineObserver
from repro.runtime.trace import ExecutionTrace
from repro.units import format_bytes, format_time

# ``PERSISTENT_LABEL`` lives in ``repro.hardware.memory_pool`` (the
# address planner needs it without importing analysis code) and stays
# re-exported here for existing importers.

#: Address bands the Perfetto export groups allocation slices into.
_ADDR_BANDS = 16

#: Free blocks detailed in a postmortem's hole table.
_TOP_HOLES = 5


def _digest(payload) -> str:
    """sha256 over the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


# -- OOM postmortem ----------------------------------------------------------


@dataclass(frozen=True)
class EvictionCandidate:
    """One live allocation a postmortem proposes to evict."""

    handle: int
    label: str
    offset: int
    size: int

    def to_dict(self) -> dict:
        return {
            "handle": self.handle, "label": self.label,
            "offset": self.offset, "size": self.size,
        }


@dataclass(frozen=True)
class OOMPostmortem:
    """Forensics of one failed allocation against the shadow pool.

    ``classification`` is ``"fragmentation"`` when the pool's total free
    bytes would have covered the (aligned) request but no single hole
    fit, and ``"capacity"`` otherwise. ``blockers`` names the resident
    tensors immediately fencing the largest free holes; ``eviction_set``
    is the minimal set of live, non-protected allocations whose removal
    opens a contiguous hole admitting the request (empty when even a
    full sweep could not help, e.g. the request exceeds capacity).
    """

    time: float
    label: str
    requested: int
    aligned: int
    capacity: int
    free_bytes: int
    largest_free_block: int
    free_block_count: int
    fragmentation: float
    classification: str
    blockers: tuple[str, ...] = ()
    eviction_set: tuple[EvictionCandidate, ...] = ()
    eviction_bytes: int = 0
    holes: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "label": self.label,
            "requested": self.requested,
            "aligned": self.aligned,
            "capacity": self.capacity,
            "free_bytes": self.free_bytes,
            "largest_free_block": self.largest_free_block,
            "free_block_count": self.free_block_count,
            "fragmentation": self.fragmentation,
            "classification": self.classification,
            "blockers": list(self.blockers),
            "eviction_set": [c.to_dict() for c in self.eviction_set],
            "eviction_bytes": self.eviction_bytes,
            "holes": [list(h) for h in self.holes],
        }

    def describe(self) -> str:
        """Multi-line blame report, markdown-friendly."""
        lines = [
            f"OOM at t={self.time * 1e3:.3f} ms: {self.label!r} requested "
            f"{format_bytes(self.requested)} "
            f"(aligned {format_bytes(self.aligned)})",
            f"- verdict: **{self.classification}** — free "
            f"{format_bytes(self.free_bytes)} in {self.free_block_count} "
            f"hole(s), largest {format_bytes(self.largest_free_block)}, "
            f"fragmentation {self.fragmentation:.1%}",
        ]
        if self.holes:
            holes = ", ".join(
                f"{format_bytes(size)} @ {offset:#x}"
                for offset, size in self.holes
            )
            lines.append(f"- largest holes: {holes}")
        if self.blockers:
            lines.append(
                "- blocking residents fencing those holes: "
                + ", ".join(self.blockers)
            )
        if self.eviction_set:
            victims = ", ".join(
                f"{c.label} ({format_bytes(c.size)} @ {c.offset:#x})"
                for c in self.eviction_set
            )
            lines.append(
                f"- minimal eviction set ({len(self.eviction_set)} "
                f"tensor(s), {format_bytes(self.eviction_bytes)}): "
                f"{victims}"
            )
        elif self.classification == "fragmentation":
            lines.append("- no admissible eviction set (protected "
                         "residents fence every window)")
        return "\n".join(lines)


def minimal_eviction_set(
    pool: MemoryPool,
    nbytes: int,
    *,
    protect: frozenset[str] | set[str] = frozenset(),
    recorder: PoolRecorder | None = None,
) -> tuple[EvictionCandidate, ...]:
    """Smallest set of live allocations whose removal admits ``nbytes``.

    Slides a window of the aligned request size over every candidate
    start offset (each block boundary, clipped to the address space) and
    collects the live blocks overlapping it; windows touching a
    protected label are inadmissible. Minimises ``(count, bytes,
    start)`` so the answer is deterministic. Returns ``()`` when the
    request already fits, exceeds capacity, or no admissible window
    exists.
    """
    size = _align(nbytes)
    if size <= pool.largest_free_block or size > pool.capacity:
        return ()
    allocated = pool.allocated_blocks()
    if not allocated:
        return ()
    labels = {
        handle: (
            record.label
            if recorder is not None
            and (record := recorder.record(handle)) is not None
            else f"handle {handle}"
        )
        for _, _, handle in allocated
    }
    starts = sorted({
        min(boundary, pool.capacity - size)
        for boundary in (
            0,
            *(offset for offset, _, _ in allocated),
            *(offset + blk for offset, blk, _ in allocated),
        )
        if boundary <= pool.capacity - size
    })
    offsets = [offset for offset, _, _ in allocated]
    best: tuple[int, int, int] | None = None
    best_set: tuple[EvictionCandidate, ...] = ()
    for start in starts:
        end = start + size
        # First allocated block that could overlap [start, end).
        index = bisect_right(offsets, start) - 1
        if index >= 0:
            offset, blk, _ = allocated[index]
            if offset + blk <= start:
                index += 1
        else:
            index = 0
        victims: list[EvictionCandidate] = []
        admissible = True
        while index < len(allocated) and allocated[index][0] < end:
            offset, blk, handle = allocated[index]
            if offset + blk > start:
                label = labels[handle]
                if label in protect:
                    admissible = False
                    break
                victims.append(
                    EvictionCandidate(handle, label, offset, blk),
                )
            index += 1
        if not admissible:
            continue
        cost = (len(victims), sum(v.size for v in victims), start)
        if best is None or cost < best:
            best, best_set = cost, tuple(victims)
    return best_set


def eviction_admits(
    pool: MemoryPool,
    eviction_set: tuple[EvictionCandidate, ...] | list[EvictionCandidate],
    nbytes: int,
) -> bool:
    """Replay check: would freeing ``eviction_set`` admit ``nbytes``?

    Pure — merges the pool's current free list with the candidates'
    address ranges and looks for a coalesced hole of the aligned size,
    without mutating the pool.
    """
    size = _align(nbytes)
    intervals = sorted(
        [*pool.free_blocks(), *((c.offset, c.size) for c in eviction_set)],
    )
    merged_end = -1
    merged_start = 0
    for offset, blk in intervals:
        if offset == merged_end:
            merged_end += blk
        else:
            merged_start, merged_end = offset, offset + blk
        if merged_end - merged_start >= size:
            return True
    return False


def analyze_failed_alloc(
    pool: MemoryPool,
    nbytes: int,
    *,
    label: str = "",
    time: float = 0.0,
    recorder: PoolRecorder | None = None,
    protect: frozenset[str] | set[str] = frozenset({PERSISTENT_LABEL}),
) -> OOMPostmortem:
    """Build the blame report for a failed allocation of ``nbytes``.

    Call with the pool in its at-failure state (``MemoryPool.alloc``
    leaves the free list untouched when it raises). ``protect`` labels
    are never proposed for eviction — by default the persistent region.
    """
    aligned = _align(max(nbytes, 1))
    free = pool.free_bytes
    largest = pool.largest_free_block
    classification = (
        "fragmentation" if free >= aligned > largest else "capacity"
    )
    holes = tuple(
        sorted(pool.free_blocks(), key=lambda b: (-b[1], b[0]))[:_TOP_HOLES],
    )
    allocated = pool.allocated_blocks()
    offsets = [offset for offset, _, _ in allocated]

    def _label(handle: int) -> str:
        if recorder is not None:
            record = recorder.record(handle)
            if record is not None:
                return record.label
        return f"handle {handle}"

    blockers: list[str] = []
    for hole_offset, hole_size in holes:
        index = bisect_right(offsets, hole_offset) - 1
        if index >= 0:
            offset, blk, handle = allocated[index]
            if offset + blk == hole_offset:
                blockers.append(_label(handle))
        if index + 1 < len(allocated):
            offset, _, handle = allocated[index + 1]
            if offset == hole_offset + hole_size:
                blockers.append(_label(handle))
    seen: set[str] = set()
    unique_blockers = tuple(
        b for b in blockers if not (b in seen or seen.add(b))
    )
    eviction_set = minimal_eviction_set(
        pool, aligned, protect=protect, recorder=recorder,
    )
    return OOMPostmortem(
        time=time,
        label=label,
        requested=nbytes,
        aligned=aligned,
        capacity=pool.capacity,
        free_bytes=free,
        largest_free_block=largest,
        free_block_count=len(pool.free_blocks()),
        fragmentation=pool.fragmentation(),
        classification=classification,
        blockers=unique_blockers,
        eviction_set=eviction_set,
        eviction_bytes=sum(c.size for c in eviction_set),
        holes=holes,
    )


# -- address-space timeline --------------------------------------------------


@dataclass(frozen=True)
class AddressSpaceTimeline:
    """Address x time occupancy of one run's shadow address space.

    ``records`` carry concrete address ranges and birth/death times;
    ``occupancy`` is the ledger-exact ``(time, used_bytes)`` sample
    stream (agrees with the engine's peak at every event); ``snapshots``
    is the free-space structure after each pool event.
    """

    name: str
    capacity: int
    strategy: str
    end_time: float
    records: tuple[AllocationRecord, ...] = ()
    snapshots: tuple[PoolSnapshot, ...] = ()
    occupancy: tuple[tuple[float, int], ...] = ()

    @classmethod
    def from_trace(
        cls,
        trace: ExecutionTrace,
        capacity: int,
        *,
        strategy: str = "best_fit",
        snapshot_every: int = 1,
        plan=None,
    ) -> "AddressSpaceTimeline":
        """Rebuild a timeline offline from a traced run's allocation log.

        Replays ``trace.alloc_events`` through a fresh shadow pool in
        recorded order (the log is the engine's exact dispatch order, so
        re-sorting would shift same-timestamp placements); placement
        failures during replay are tolerated — the offending allocation
        simply gets no rectangle. ``plan`` threads an
        :class:`~repro.planner.address_plan.AddressPlan` into the
        shadow pool for the ``"planned"`` strategy.
        """
        pool = MemoryPool(capacity=capacity, strategy=strategy, plan=plan)
        recorder = PoolRecorder(snapshot_every=snapshot_every)
        pool.recorder = recorder
        handles: dict[str, list[tuple[int, int]]] = {}
        if trace.persistent_bytes:
            try:
                handle = pool.alloc(
                    trace.persistent_bytes, label=PERSISTENT_LABEL,
                    time=0.0, instr="<run begin>",
                )
                handles[PERSISTENT_LABEL] = [(handle, trace.persistent_bytes)]
            except OutOfMemoryError:
                pass
        for time, label, nbytes in trace.alloc_events:
            if nbytes > 0:
                try:
                    handle = pool.alloc(nbytes, label=label, time=time)
                except OutOfMemoryError:
                    continue
                handles.setdefault(label, []).append((handle, nbytes))
            else:
                pending = handles.get(label)
                if pending:
                    size = -nbytes
                    index = next(
                        (i for i, (_, sz) in enumerate(pending)
                         if sz == size),
                        0,
                    )
                    handle, _ = pending.pop(index)
                    try:
                        pool.free(handle, time=time)
                    except AllocationError:  # pragma: no cover - defensive
                        pass
        return cls(
            name=trace.name,
            capacity=capacity,
            strategy=strategy,
            end_time=trace.iteration_time,
            records=tuple(recorder.records),
            snapshots=tuple(recorder.snapshots),
            occupancy=tuple(
                (s.time, s.used_bytes) for s in trace.memory_samples
            ),
        )

    @property
    def peak_occupancy(self) -> int:
        """Largest ledger-used sample (equals the engine's peak)."""
        return max((used for _, used in self.occupancy), default=0)

    def to_chrome_events(self, pid: int = 0) -> list[dict]:
        """The timeline as Chrome trace events (Perfetto-loadable).

        Counter tracks carry the ledger-exact device-memory level, the
        pool fragmentation/free-block shape and the largest free block;
        allocation lifetimes render as "X" slices grouped into address
        bands, approximating the address x time occupancy rectangles.
        """
        from repro.telemetry.chrome import counter_track_events

        events = counter_track_events(
            "device memory (ledger)",
            [(time, used) for time, used in self.occupancy],
            pid=pid,
            process_name=f"memscope: {self.name or 'run'}",
        )
        events += counter_track_events(
            "pool free space",
            [
                (s.time, {
                    "largest_free_block": s.largest_free_block,
                    "free_bytes": s.free_bytes,
                })
                for s in self.snapshots
            ],
            pid=pid,
        )
        events += counter_track_events(
            "pool fragmentation",
            [
                (s.time, {
                    "fragmentation_pct": round(s.fragmentation * 100.0, 3),
                    "free_blocks": s.free_block_count,
                })
                for s in self.snapshots
            ],
            pid=pid,
        )
        band = max(1, -(-self.capacity // _ADDR_BANDS))
        named: set[int] = set()
        for record in self.records:
            tid = 10 + record.offset // band
            if tid not in named:
                named.add(tid)
                lo = (record.offset // band) * band
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": tid,
                    "args": {"name": (
                        f"addr {format_bytes(lo)}"
                        f"..{format_bytes(min(lo + band, self.capacity))}"
                    )},
                })
            death = record.death if record.death is not None else self.end_time
            events.append({
                "ph": "X", "name": record.label, "cat": "allocation",
                "pid": pid, "tid": tid,
                "ts": record.birth * 1e6,
                "dur": max(death - record.birth, 0.0) * 1e6,
                "args": {
                    "offset": record.offset, "size": record.size,
                    "nbytes": record.nbytes, "instr": record.instr,
                },
            })
        return events

    def heatmap(
        self, time_bins: int = 48, addr_bins: int = 32,
    ) -> dict:
        """Occupancy fraction per (address band, time slice) cell.

        ``cells[a][t]`` is the fraction of address band ``a`` during
        time slice ``t`` covered by live allocations — the JSON form of
        the address x time occupancy rectangles.
        """
        horizon = max(self.end_time, 1e-12)
        dt = horizon / time_bins
        da = self.capacity / addr_bins
        cells = [[0.0] * time_bins for _ in range(addr_bins)]
        for record in self.records:
            t0 = record.birth
            t1 = record.death if record.death is not None else self.end_time
            if t1 <= t0:
                t1 = min(t0 + dt * 1e-6, horizon)  # instantaneous sliver
            a0, a1 = record.offset, record.offset + record.size
            tb0 = max(0, min(time_bins - 1, int(t0 / dt)))
            tb1 = max(0, min(time_bins - 1, int((t1 - 1e-15) / dt)))
            ab0 = max(0, min(addr_bins - 1, int(a0 / da)))
            ab1 = max(0, min(addr_bins - 1, int((a1 - 1) / da)))
            for ab in range(ab0, ab1 + 1):
                alo, ahi = ab * da, (ab + 1) * da
                afrac = (min(a1, ahi) - max(a0, alo)) / da
                for tb in range(tb0, tb1 + 1):
                    tlo, thi = tb * dt, (tb + 1) * dt
                    tfrac = (min(t1, thi) - max(t0, tlo)) / dt
                    cells[ab][tb] += max(afrac, 0.0) * max(tfrac, 0.0)
        for row in cells:
            for index, value in enumerate(row):
                row[index] = min(1.0, round(value, 6))
        return {
            "name": self.name,
            "capacity": self.capacity,
            "end_time": self.end_time,
            "time_bins": time_bins,
            "addr_bins": addr_bins,
            "cells": cells,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "strategy": self.strategy,
            "end_time": self.end_time,
            "records": [r.to_dict() for r in self.records],
            "snapshots": [s.to_dict() for s in self.snapshots],
            "occupancy": [list(point) for point in self.occupancy],
        }

    def digest(self) -> str:
        """Content hash of the full timeline (determinism contract)."""
        return _digest(self.to_dict())


# -- per-tensor residency ----------------------------------------------------


@dataclass(frozen=True)
class TensorResidency:
    """Rolled-up residency analytics for one tensor label."""

    label: str
    allocations: int
    max_bytes: int
    time_resident: float
    evictions: int
    prefetches: int
    pcie_bytes: int
    stall_time: float

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "allocations": self.allocations,
            "max_bytes": self.max_bytes,
            "time_resident": self.time_resident,
            "evictions": self.evictions,
            "prefetches": self.prefetches,
            "pcie_bytes": self.pcie_bytes,
            "stall_time": self.stall_time,
        }


def tensor_residency(
    records,
    end_time: float,
    *,
    trace: ExecutionTrace | None = None,
    stall_by_label: dict[str, float] | None = None,
) -> list[TensorResidency]:
    """Per-tensor residency analytics from allocation records.

    Eviction/prefetch counts and PCIe bytes come from the trace's
    swap_out/swap_in instruction records (when a trace is given); stall
    attribution comes from the observer's byte-weighted split of each
    stall over the tensors resident at its end. Sorted by time resident,
    largest first, label as tiebreak.
    """
    allocs: dict[str, int] = {}
    max_bytes: dict[str, int] = {}
    resident: dict[str, float] = {}
    for record in records:
        label = record.label
        allocs[label] = allocs.get(label, 0) + 1
        max_bytes[label] = max(max_bytes.get(label, 0), record.nbytes)
        death = record.death if record.death is not None else end_time
        resident[label] = resident.get(label, 0.0) + max(
            death - record.birth, 0.0,
        )
    evictions: dict[str, int] = {}
    prefetches: dict[str, int] = {}
    pcie: dict[str, int] = {}
    if trace is not None:
        for instr in trace.records:
            if instr.kind == "swap_out":
                evictions[instr.label] = evictions.get(instr.label, 0) + 1
                pcie[instr.label] = pcie.get(instr.label, 0) + instr.nbytes
            elif instr.kind == "swap_in":
                prefetches[instr.label] = prefetches.get(instr.label, 0) + 1
                pcie[instr.label] = pcie.get(instr.label, 0) + instr.nbytes
    stalls = stall_by_label or {}
    rows = [
        TensorResidency(
            label=label,
            allocations=allocs[label],
            max_bytes=max_bytes[label],
            time_resident=resident[label],
            evictions=evictions.get(label, 0),
            prefetches=prefetches.get(label, 0),
            pcie_bytes=pcie.get(label, 0),
            stall_time=stalls.get(label, 0.0),
        )
        for label in allocs
    ]
    rows.sort(key=lambda r: (-r.time_resident, r.label))
    return rows


# -- the observer ------------------------------------------------------------


class MemscopeObserver(EngineObserver):
    """Shadow-pool observer: provenance, timelines and OOM forensics.

    Attach to any engine run (``observers=(MemscopeObserver(),)``) —
    observers cannot mutate engine state, so the executed plan and trace
    stay byte-identical with or without it. The observer replays the
    ledger's alloc/free event stream through a shadow
    :class:`~repro.hardware.memory_pool.MemoryPool`, matching frees to
    handles per-label by requested size (FIFO fallback), exactly as the
    allocator-replay analysis does.

    ``capacity`` overrides the shadow address-space size (default: the
    GPU's memory). Attached mid-run (``attach_observer``) the observer
    misses ``on_run_begin``; it then sizes a fresh address space lazily
    from the first event and tracks the partial window it saw —
    occupancy samples stay ledger-exact, provenance is partial.
    """

    def __init__(
        self,
        *,
        capacity: int | None = None,
        strategy: str = "best_fit",
        snapshot_every: int = 1,
        plan=None,
    ) -> None:
        self._capacity_override = capacity
        self.strategy = strategy
        self.snapshot_every = snapshot_every
        #: Address plan threaded into the shadow pool (``"planned"``
        #: strategy); lets memscope audit a planned placement live.
        self.plan = plan
        self._reset()

    def _reset(self) -> None:
        self.pool: MemoryPool | None = None
        self.recorder: PoolRecorder | None = None
        self.capacity = 0
        self.name = ""
        self.gpu_name = ""
        #: Ledger-exact ``(time, used_bytes)`` samples.
        self.occupancy: list[tuple[float, int]] = []
        self._handles: dict[str, list[tuple[int, int]]] = {}
        #: Allocations alive in the ledger the shadow pool failed to
        #: place (placement OOM while the engine proceeded).
        self._unplaced: dict[str, list[int]] = {}
        self.placement_failures: list[OOMPostmortem] = []
        #: Postmortem of the engine-level OOM, if the run died of one.
        self.postmortem: OOMPostmortem | None = None
        self.stalls: list[tuple[float, str, float]] = []
        self.stall_time = 0.0
        self.stall_by_label: dict[str, float] = {}
        self.iterations: list[tuple[int, float, float]] = []
        self.trace: ExecutionTrace | None = None
        self._last_time = 0.0
        self._instr_cursor = 0

    # -- engine callbacks ---------------------------------------------------

    def on_run_begin(self, program, gpu) -> None:
        """Open a fresh shadow address space for this run."""
        self._reset()
        self.name = program.name
        self.gpu_name = gpu.name
        self.capacity = self._capacity_override or gpu.memory_bytes
        self._open_pool()
        if program.persistent_bytes:
            self._shadow_alloc(
                0.0, PERSISTENT_LABEL, program.persistent_bytes,
                instr="<run begin>",
            )
        self.occupancy.append((0.0, program.persistent_bytes))

    def _open_pool(self) -> None:
        self.pool = MemoryPool(
            capacity=self.capacity, strategy=self.strategy, plan=self.plan,
        )
        self.recorder = PoolRecorder(snapshot_every=self.snapshot_every)
        self.pool.recorder = self.recorder

    def _lazy_pool(self, used: int) -> None:
        """Mid-run attach: size an address space without ``on_run_begin``."""
        self.capacity = self._capacity_override or max(used * 2, 1)
        self._open_pool()

    def _shadow_alloc(
        self, time: float, label: str, nbytes: int, instr: str = "",
    ) -> None:
        assert self.pool is not None
        try:
            handle = self.pool.alloc(
                nbytes, label=label, time=time, instr=instr,
            )
        except OutOfMemoryError:
            # The shadow pool can fragment where the byte ledger cannot;
            # record the forensics and keep tracking the bytes as
            # unplaced so the matching free doesn't release a stranger.
            self.placement_failures.append(analyze_failed_alloc(
                self.pool, nbytes, label=label, time=time,
                recorder=self.recorder,
            ))
            self._unplaced.setdefault(label, []).append(nbytes)
            return
        self._handles.setdefault(label, []).append((handle, nbytes))

    def on_alloc(self, time: float, label: str, nbytes: int,
                 used: int) -> None:
        """Sample the ledger level and place the bytes in the shadow pool."""
        self.occupancy.append((time, used))
        self._last_time = max(self._last_time, time)
        if self.pool is None:
            self._lazy_pool(used)
        if nbytes:
            self._shadow_alloc(time, label, nbytes)

    def on_free(self, time: float, label: str, nbytes: int,
                used: int) -> None:
        """Sample the ledger level and release the matching shadow block."""
        self.occupancy.append((time, used))
        self._last_time = max(self._last_time, time)
        if not nbytes or self.pool is None:
            return
        unplaced = self._unplaced.get(label)
        pending = self._handles.get(label)
        if pending:
            index = next(
                (i for i, (_, sz) in enumerate(pending) if sz == nbytes),
                None,
            )
            if index is None and unplaced and nbytes in unplaced:
                unplaced.remove(nbytes)
                return
            handle, _ = pending.pop(index if index is not None else 0)
            try:
                self.pool.free(handle, time=time)
            except AllocationError:  # pragma: no cover - defensive
                pass
        elif unplaced:
            # Free of a placement-failed (or pre-attach) allocation.
            if nbytes in unplaced:
                unplaced.remove(nbytes)
            else:
                unplaced.pop(0)

    def on_instr_end(
        self, label: str, kind: str, stream: str, start: float, end: float,
        nbytes: int = 0, tag: str = "",
    ) -> None:
        """Attribute freshly-born records to their requesting instruction.

        The engine notifies an instruction's allocations before the
        instruction itself, all stamped with the dispatch start time;
        records born at ``start`` and still unattributed belong to this
        instruction.
        """
        if self.recorder is None:
            return
        records = self.recorder.records
        index = self._instr_cursor
        while index < len(records) and records[index].birth < start:
            index += 1
        self._instr_cursor = index
        while index < len(records) and records[index].birth == start:
            if not records[index].instr:
                records[index].instr = label
            index += 1

    def on_stall_end(self, time: float, label: str, stalled: float) -> None:
        """Split the stall over the tensors resident when it resolved."""
        self.stalls.append((time, label, stalled))
        self.stall_time += stalled
        if self.recorder is None:
            return
        live = self.recorder.live_records()
        total = sum(record.size for record in live)
        if total <= 0:
            return
        for record in live:
            share = stalled * (record.size / total)
            self.stall_by_label[record.label] = (
                self.stall_by_label.get(record.label, 0.0) + share
            )

    def on_oom(
        self, time: float, label: str, requested: int, available: int,
    ) -> None:
        """Engine-terminal OOM: freeze the blame report."""
        if self.pool is not None:
            self.postmortem = analyze_failed_alloc(
                self.pool, requested, label=label, time=time,
                recorder=self.recorder,
            )
        else:  # pre-first-event OOM: bytes-only forensics
            self.postmortem = OOMPostmortem(
                time=time, label=label, requested=requested,
                aligned=_align(max(requested, 1)), capacity=0,
                free_bytes=available, largest_free_block=available,
                free_block_count=1 if available else 0,
                fragmentation=0.0, classification="capacity",
            )

    def on_iteration_end(self, index: int, start: float, end: float) -> None:
        """Record the iteration window."""
        self.iterations.append((index, start, end))

    def on_run_end(self, trace: ExecutionTrace) -> None:
        """Keep the finalized trace for residency analytics + metrics."""
        self.trace = trace
        from repro.telemetry import get_telemetry

        metrics = get_telemetry().metrics
        if metrics.enabled and self.recorder is not None:
            metrics.counter("memscope.records").inc(
                len(self.recorder.records),
            )
            metrics.counter("memscope.placement_failures").inc(
                len(self.placement_failures),
            )
            metrics.gauge("memscope.final_fragmentation").set(
                self.pool.fragmentation() if self.pool else 0.0,
            )

    # -- products -----------------------------------------------------------

    @property
    def end_time(self) -> float:
        """Horizon of the observed run on the simulated clock."""
        if self.trace is not None:
            return max(self.trace.iteration_time, self._last_time)
        return self._last_time

    def timeline(self) -> AddressSpaceTimeline:
        """The run's address x time occupancy, as observed so far."""
        return AddressSpaceTimeline(
            name=self.name,
            capacity=self.capacity,
            strategy=self.strategy,
            end_time=self.end_time,
            records=tuple(self.recorder.records) if self.recorder else (),
            snapshots=(
                tuple(self.recorder.snapshots) if self.recorder else ()
            ),
            occupancy=tuple(self.occupancy),
        )

    def residency(self) -> list[TensorResidency]:
        """Per-tensor residency analytics for this run."""
        records = self.recorder.records if self.recorder else []
        return tensor_residency(
            records, self.end_time, trace=self.trace,
            stall_by_label=self.stall_by_label,
        )

    def report(
        self,
        *,
        gpu: str = "",
        policy: str = "",
        feasible: bool = True,
        failure: str = "",
    ) -> "MemscopeReport":
        """Roll everything up into one report object."""
        timeline = self.timeline()
        return MemscopeReport(
            name=self.name,
            gpu=gpu or self.gpu_name,
            policy=policy,
            capacity=self.capacity,
            strategy=self.strategy,
            feasible=feasible,
            failure=failure,
            peak_memory=timeline.peak_occupancy,
            stall_time=self.stall_time,
            pool_stats=(
                self.pool.stats.snapshot() if self.pool is not None else {}
            ),
            final_fragmentation=(
                self.pool.fragmentation() if self.pool is not None else 0.0
            ),
            timeline=timeline,
            residency=tuple(self.residency()),
            postmortem=self.postmortem,
            placement_failures=tuple(self.placement_failures),
        )


# -- the report --------------------------------------------------------------


@dataclass
class MemscopeReport:
    """One run's memscope findings: timeline, residency, forensics."""

    name: str
    gpu: str
    policy: str
    capacity: int
    strategy: str
    feasible: bool
    failure: str
    peak_memory: int
    stall_time: float
    pool_stats: dict
    final_fragmentation: float
    timeline: AddressSpaceTimeline
    residency: tuple[TensorResidency, ...] = ()
    postmortem: OOMPostmortem | None = None
    placement_failures: tuple[OOMPostmortem, ...] = ()

    def to_json(self, *, full_timeline: bool = False) -> dict:
        """JSON-ready payload; ``full_timeline`` inlines every record."""
        payload = {
            "name": self.name,
            "gpu": self.gpu,
            "policy": self.policy,
            "capacity": self.capacity,
            "strategy": self.strategy,
            "feasible": self.feasible,
            "failure": self.failure,
            "peak_memory": self.peak_memory,
            "stall_time": self.stall_time,
            "pool_stats": dict(self.pool_stats),
            "final_fragmentation": self.final_fragmentation,
            "timeline_digest": self.timeline.digest(),
            "residency": [r.to_dict() for r in self.residency],
            "postmortem": (
                self.postmortem.to_dict() if self.postmortem else None
            ),
            "placement_failures": [
                p.to_dict() for p in self.placement_failures
            ],
        }
        if full_timeline:
            payload["timeline"] = self.timeline.to_dict()
        return payload

    def digest(self) -> str:
        """Content hash of the report (determinism contract)."""
        return _digest(self.to_json(full_timeline=True))

    def to_markdown(self, top: int = 15) -> str:
        """Human-readable report."""
        stats = self.pool_stats
        lines = [
            f"# Memscope: {self.name} [{self.policy}] on {self.gpu}",
            "",
            f"- address space {format_bytes(self.capacity)} "
            f"({self.strategy}), ledger peak "
            f"{format_bytes(self.peak_memory)}",
            f"- pool: {stats.get('alloc_count', 0)} allocs, "
            f"{stats.get('free_count', 0)} frees, "
            f"{stats.get('failed_allocs', 0)} failed, peak "
            f"{format_bytes(stats.get('peak_used', 0))} (aligned)",
            f"- final fragmentation {self.final_fragmentation:.1%}; "
            f"free-list shape: largest "
            f"{format_bytes(stats.get('largest_free_block', 0))} across "
            f"{stats.get('free_block_count', 0)} block(s)",
            f"- memory stalls {format_time(self.stall_time)}",
        ]
        if not self.feasible:
            lines.append(f"- **run failed**: {self.failure}")
        rows = self.residency[:top]
        if rows:
            lines += [
                "",
                f"## Tensor residency (top {len(rows)} by time resident)",
                "",
                "| tensor | allocs | max bytes | resident | evict | "
                "prefetch | pcie | stall |",
                "|--------|--------|-----------|----------|-------|"
                "----------|------|-------|",
            ]
            for row in rows:
                lines.append(
                    f"| {row.label} | {row.allocations} | "
                    f"{format_bytes(row.max_bytes)} | "
                    f"{format_time(row.time_resident)} | "
                    f"{row.evictions} | {row.prefetches} | "
                    f"{format_bytes(row.pcie_bytes)} | "
                    f"{format_time(row.stall_time)} |"
                )
        if self.placement_failures:
            lines += [
                "",
                f"## Placement failures ({len(self.placement_failures)})",
                "",
                "The byte ledger admitted these allocations but the "
                "shadow pool could not place them contiguously:",
                "",
            ]
            for failure in self.placement_failures[:5]:
                lines.append(failure.describe())
                lines.append("")
        if self.postmortem is not None:
            lines += ["", "## OOM postmortem", "", self.postmortem.describe()]
        return "\n".join(lines)


# -- drivers (CLI / sweeps) --------------------------------------------------


@dataclass
class MemscopeRun:
    """A memscope-instrumented run's artifacts."""

    report: MemscopeReport
    observer: MemscopeObserver
    trace: ExecutionTrace | None = None
    chrome: object | None = None  # ChromeTraceObserver when requested
    compiled: object | None = None  # pipeline CompiledRun

    def merged_trace(self) -> dict:
        """One Perfetto payload: engine events + memscope counter tracks."""
        from repro.telemetry.chrome import merge_traces

        sources = []
        names = []
        if self.chrome is not None:
            sources.append(self.chrome)
            names.append("engine execution")
        sources.append(self.report.timeline.to_chrome_events())
        names.append("memscope address space")
        return merge_traces(*sources, names=names)


def run_memscope(
    model,
    policy,
    gpu,
    batch: int,
    *,
    param_scale: float = 1.0,
    precision: str = "fp32",
    capacity_frac: float = 1.0,
    strategy: str = "best_fit",
    snapshot_every: int = 1,
    iterations: int | None = None,
    faults=None,
    cache=None,
    with_chrome: bool = False,
    **overrides,
) -> MemscopeRun:
    """Compile + execute one configuration under memscope.

    Capacity failures never raise — an engine OOM comes back as an
    infeasible report whose observer still carries the postmortem.
    ``capacity_frac`` shrinks the device below the preset (the standard
    way to provoke memory pressure); ``with_chrome`` additionally
    attaches a :class:`~repro.runtime.observers.ChromeTraceObserver` so
    :meth:`MemscopeRun.merged_trace` includes the engine slices.
    """
    import dataclasses

    from repro.pipeline.compile import compile_run

    if capacity_frac != 1.0:
        gpu = dataclasses.replace(
            gpu,
            name=f"{gpu.name} (x{capacity_frac:g} capacity)",
            memory_bytes=int(gpu.memory_bytes * capacity_frac),
        )
    if isinstance(model, str):
        from repro.models.registry import build_model

        graph = build_model(
            model, batch,
            param_scale=param_scale, precision=precision, **overrides,
        )
    else:
        graph = model
    observer = MemscopeObserver(
        strategy=strategy, snapshot_every=snapshot_every,
    )
    observers: list[EngineObserver] = [observer]
    chrome = None
    if with_chrome:
        from repro.runtime.observers import ChromeTraceObserver

        chrome = ChromeTraceObserver()
        observers.append(chrome)
    compiled = compile_run(
        graph, policy, gpu, cache=cache, observers=observers,
        iterations=iterations, faults=faults,
    )
    result = compiled.result
    policy_name = result.policy
    report = observer.report(
        gpu=gpu.name, policy=policy_name,
        feasible=result.feasible, failure=result.failure,
    )
    return MemscopeRun(
        report=report, observer=observer, trace=result.trace,
        chrome=chrome, compiled=compiled,
    )


def run_memscope_cluster(
    model: str,
    batch: int,
    policy,
    cluster,
    *,
    mode: str = "dp",
    micros: int | None = None,
    strategy: str = "best_fit",
    snapshot_every: int = 1,
    param_scale: float = 1.0,
    cache=None,
) -> tuple[list[MemscopeRun], object]:
    """Per-rank memscope over a cluster execution.

    Compiles under the chosen parallelism mode, attaches one
    :class:`MemscopeObserver` plus one Chrome observer per rank, and
    returns ``(per-rank MemscopeRun list, ClusterTrace)``. Raises
    :class:`~repro.errors.PlanningError` on infeasible compiles (the
    cluster compiler's contract).
    """
    from repro.cluster import compile_cluster
    from repro.runtime.observers import ChromeTraceObserver

    compiled = compile_cluster(
        model, batch, policy, cluster,
        mode=mode, micros=micros, cache=cache, param_scale=param_scale,
    )
    world = cluster.world_size
    scopes = [
        MemscopeObserver(strategy=strategy, snapshot_every=snapshot_every)
        for _ in range(world)
    ]
    chromes = [ChromeTraceObserver(pid=rank) for rank in range(world)]
    trace = compiled.execute(
        observers=[[scopes[rank], chromes[rank]] for rank in range(world)],
    )
    runs = []
    for rank in range(world):
        report = scopes[rank].report(
            gpu=cluster.gpus[rank].name,
            policy=policy if isinstance(policy, str) else policy.name,
        )
        report.name = f"{report.name or model}/rank{rank}"
        runs.append(MemscopeRun(
            report=report, observer=scopes[rank],
            trace=trace.ranks[rank], chrome=chromes[rank],
        ))
    return runs, trace
