"""Run one (graph, policy, GPU) configuration end to end.

Thin compatibility wrappers over the staged compilation pipeline
(:mod:`repro.pipeline`): profile → plan (policy) → lower (sTensor graph
generation) → execute (runtime engine). The result records feasibility:
a configuration is *infeasible* when the policy itself gives up
(:class:`~repro.errors.PlanningError` / :class:`~repro.errors.PolicyError`)
or when the engine runs out of device memory executing the plan.

Sweeps that repeat configurations should pass a shared
:class:`~repro.pipeline.CompileCache` so profiles and plans are reused
across calls; without one, every call compiles from scratch (the
pre-pipeline behaviour).
"""

from __future__ import annotations

from repro.core.augment import AugmentOptions
from repro.core.profiler import Profiler
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache, EvalResult, compile_run
from repro.policies.base import MemoryPolicy
from repro.runtime.engine import EngineOptions
from repro.runtime.observers import EngineObserver

__all__ = ["EvalResult", "evaluate", "run_iterations", "run_policy"]


def run_policy(
    graph: Graph,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    augment_options: AugmentOptions | None = None,
    engine_options: EngineOptions | None = None,
    profiler: Profiler | None = None,
    observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    cache: CompileCache | None = None,
) -> EvalResult:
    """Plan, augment and execute; never raises for capacity failures.

    ``observers`` are attached to the engine run (e.g. a
    :class:`~repro.runtime.observers.ChromeTraceObserver` for the CLI's
    ``trace`` command).
    """
    return compile_run(
        graph, policy, gpu,
        cache=cache,
        profiler=profiler,
        augment_options=augment_options,
        engine_options=engine_options,
        observers=observers,
    ).result


def run_iterations(
    graph: Graph,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    iterations: int,
    *,
    augment_options: AugmentOptions | None = None,
    profiler: Profiler | None = None,
    cache: CompileCache | None = None,
) -> tuple[list[float], EvalResult]:
    """Plan once, execute ``iterations`` back-to-back iterations.

    Returns the per-iteration durations (warm-up visible in the first
    entries) plus an :class:`EvalResult` whose trace aggregates the whole
    run. Infeasible configurations return an empty duration list.
    """
    compiled = compile_run(
        graph, policy, gpu,
        cache=cache,
        profiler=profiler,
        augment_options=augment_options,
        iterations=iterations,
    )
    durations = compiled.executed.durations if compiled.executed else []
    return durations, compiled.result


def evaluate(
    model_builder,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    batch: int,
    *,
    param_scale: float = 1.0,
    augment_options: AugmentOptions | None = None,
    engine_options: EngineOptions | None = None,
    observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    cache: CompileCache | None = None,
    **model_overrides,
) -> EvalResult:
    """Build the model at the given scale and run one policy on it.

    ``model_builder`` is either a registry name or a callable with the
    registry signature ``(batch, *, param_scale=..., **overrides)``.
    """
    if isinstance(model_builder, str):
        from repro.models.registry import build_model

        graph = build_model(
            model_builder, batch, param_scale=param_scale, **model_overrides,
        )
    else:
        graph = model_builder(batch, param_scale=param_scale, **model_overrides)
    return run_policy(
        graph, policy, gpu,
        augment_options=augment_options,
        engine_options=engine_options,
        observers=observers,
        cache=cache,
    )
