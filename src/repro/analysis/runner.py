"""Run one (graph, policy, GPU) configuration end to end.

The pipeline mirrors the paper's system flow: profile → plan (policy) →
augment (sTensor graph generation) → execute (runtime engine). The
result records feasibility: a configuration is *infeasible* when the
policy itself gives up (:class:`~repro.errors.PlanningError` /
:class:`~repro.errors.PolicyError`) or when the engine runs out of
device memory executing the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.augment import AugmentOptions, augment_graph
from repro.core.plan import Plan
from repro.core.profiler import Profiler
from repro.errors import OutOfMemoryError, PlanningError, PolicyError
from repro.graph.graph import Graph
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy, get_policy
from repro.runtime.engine import Engine, EngineOptions
from repro.runtime.observers import EngineObserver
from repro.runtime.trace import ExecutionTrace


@dataclass
class EvalResult:
    """Outcome of one configuration run."""

    policy: str
    feasible: bool
    plan: Plan | None = None
    trace: ExecutionTrace | None = None
    failure: str = ""

    @property
    def throughput(self) -> float:
        return self.trace.throughput if self.trace else 0.0

    @property
    def iteration_time(self) -> float:
        return self.trace.iteration_time if self.trace else float("inf")


def run_policy(
    graph: Graph,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    augment_options: AugmentOptions | None = None,
    engine_options: EngineOptions | None = None,
    profiler: Profiler | None = None,
    observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
) -> EvalResult:
    """Plan, augment and execute; never raises for capacity failures.

    ``observers`` are attached to the engine run (e.g. a
    :class:`~repro.runtime.observers.ChromeTraceObserver` for the CLI's
    ``trace`` command).
    """
    if isinstance(policy, str):
        policy = get_policy(policy)
    schedule = dfs_schedule(graph)
    profiler = profiler or Profiler(gpu)
    profile = profiler.profile(graph)
    try:
        plan = policy.build_plan(
            graph, gpu, schedule=schedule, profile=profile,
        )
    except (PolicyError, PlanningError) as exc:
        return EvalResult(policy=policy.name, feasible=False, failure=str(exc))

    if augment_options is None and policy.recompute_strategy is not None:
        from repro.core.recompute import RecomputeStrategy

        augment_options = AugmentOptions(
            recompute_strategy=RecomputeStrategy(policy.recompute_strategy),
        )
    augmented = augment_graph(
        graph, plan, profile, schedule=schedule, options=augment_options,
    )
    engine = Engine(gpu, engine_options)
    try:
        trace = engine.execute(augmented.program, observers=observers)
    except OutOfMemoryError as exc:
        return EvalResult(
            policy=policy.name, feasible=False, plan=plan, failure=str(exc),
        )
    return EvalResult(
        policy=policy.name, feasible=True, plan=plan, trace=trace,
    )


def run_iterations(
    graph: Graph,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    iterations: int,
    *,
    augment_options: AugmentOptions | None = None,
    profiler: Profiler | None = None,
) -> tuple[list[float], EvalResult]:
    """Plan once, execute ``iterations`` back-to-back iterations.

    Returns the per-iteration durations (warm-up visible in the first
    entries) plus an :class:`EvalResult` whose trace aggregates the whole
    run. Infeasible configurations return an empty duration list.
    """
    if isinstance(policy, str):
        policy = get_policy(policy)
    schedule = dfs_schedule(graph)
    profiler = profiler or Profiler(gpu)
    profile = profiler.profile(graph)
    try:
        plan = policy.build_plan(
            graph, gpu, schedule=schedule, profile=profile,
        )
    except (PolicyError, PlanningError) as exc:
        return [], EvalResult(
            policy=policy.name, feasible=False, failure=str(exc),
        )
    if augment_options is None and policy.recompute_strategy is not None:
        from repro.core.recompute import RecomputeStrategy

        augment_options = AugmentOptions(
            recompute_strategy=RecomputeStrategy(policy.recompute_strategy),
        )
    augmented = augment_graph(
        graph, plan, profile, schedule=schedule, options=augment_options,
    )
    engine = Engine(gpu)
    try:
        durations, trace = engine.execute_iterations(
            augmented.program, iterations,
        )
    except OutOfMemoryError as exc:
        return [], EvalResult(
            policy=policy.name, feasible=False, plan=plan, failure=str(exc),
        )
    return durations, EvalResult(
        policy=policy.name, feasible=True, plan=plan, trace=trace,
    )


def evaluate(
    model_builder,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    batch: int,
    *,
    param_scale: float = 1.0,
    augment_options: AugmentOptions | None = None,
    engine_options: EngineOptions | None = None,
    observers: tuple[EngineObserver, ...] | list[EngineObserver] = (),
    **model_overrides,
) -> EvalResult:
    """Build the model at the given scale and run one policy on it.

    ``model_builder`` is either a registry name or a callable with the
    registry signature ``(batch, *, param_scale=..., **overrides)``.
    """
    if isinstance(model_builder, str):
        from repro.models.registry import build_model

        graph = build_model(
            model_builder, batch, param_scale=param_scale, **model_overrides,
        )
    else:
        graph = model_builder(batch, param_scale=param_scale, **model_overrides)
    return run_policy(
        graph, policy, gpu,
        augment_options=augment_options,
        engine_options=engine_options,
        observers=observers,
    )
