"""Breakdown analyses (Figure 14).

* :func:`strategy_breakdown` — total bytes the planner assigned to swap
  versus recompute (Figure 14b: the mix shifts between GPUs because the
  profiled cost ratios differ).
* :func:`max_scale_under_throughput` — largest sample size a policy
  sustains while keeping at least ``x%`` of the Base policy's reference
  throughput (Figure 14a).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis.runner import evaluate
from repro.analysis.scaling import max_sample_scale
from repro.core.plan import MemOption, Plan
from repro.graph.graph import Graph
from repro.hardware.gpu import GPUSpec
from repro.policies.base import MemoryPolicy, get_policy
from repro.runtime.engine import EngineOptions

_FAST = EngineOptions(record_trace=False)


def strategy_breakdown(graph: Graph, plan: Plan) -> dict[str, int]:
    """Bytes assigned to each eviction mechanism by a plan."""
    by_option = plan.option_bytes(graph)
    return {
        "swap": by_option[MemOption.SWAP],
        "recompute": by_option[MemOption.RECOMPUTE],
        "cpu": by_option[MemOption.CPU],
    }


def reference_throughput(
    model: str | Callable,
    gpu: GPUSpec,
    *,
    param_scale: float = 1.0,
    **overrides,
) -> tuple[int, float]:
    """(max Base batch, Base throughput at that batch) on this GPU."""
    base_batch = max_sample_scale(
        model, "base", gpu, param_scale=param_scale, **overrides,
    )
    if base_batch == 0:
        return 0, 0.0
    result = evaluate(
        model, "base", gpu, base_batch,
        param_scale=param_scale, engine_options=_FAST, **overrides,
    )
    return base_batch, result.throughput


def max_scale_under_throughput(
    model: str | Callable,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    fraction: float,
    reference: float | None = None,
    param_scale: float = 1.0,
    cap: int = 4096,
    **overrides,
) -> int:
    """Largest batch with throughput >= fraction * reference (Figure 14a).

    ``reference`` defaults to the Base policy's throughput at its own
    maximum feasible batch. Throughput is unimodal-ish in batch size but
    not strictly monotone, so this scans feasible batches upward and
    keeps the largest batch satisfying the constraint.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if isinstance(policy, str):
        policy = get_policy(policy)
    if reference is None:
        _, reference = reference_throughput(
            model, gpu, param_scale=param_scale, **overrides,
        )
    if reference <= 0:
        return 0
    target = fraction * reference

    # Throughput rises with batch until memory management starts paying
    # for scale, then falls; scan the doubling ladder to the feasibility
    # edge and keep the largest batch that still met the target.
    best = 0
    batch = 1
    while batch <= cap:
        result = evaluate(
            model, policy, gpu, batch,
            param_scale=param_scale, engine_options=_FAST, **overrides,
        )
        if not result.feasible:
            break
        if result.throughput >= target:
            best = batch
        batch *= 2
    if best == 0:
        return 0
    # Refine between best (ok) and 2*best (failed or untested).
    lo, hi = best, min(cap, best * 2)
    while hi - lo > max(1, lo // 16):
        mid = (lo + hi) // 2
        result = evaluate(
            model, policy, gpu, mid,
            param_scale=param_scale, engine_options=_FAST, **overrides,
        )
        if result.feasible and result.throughput >= target:
            lo = mid
        else:
            hi = mid
    return lo
