"""Throughput sweeps over sample size (Figures 12, 13, 15).

For each (policy, batch) point the sweep runs the full pipeline and
records throughput in samples/second; infeasible points are kept in the
series (throughput 0) so crossover and drop-out batch sizes are visible,
exactly as the paper's figures show policies "failing to run".
"""

from __future__ import annotations

import functools
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.analysis.parallel import parallel_map, resolve_backend
from repro.analysis.sweep_tasks import (
    ThroughputTaskSpec,
    freeze_overrides,
    resolve_sweep_cache,
    run_throughput_point,
)
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, batch) measurement."""

    policy: str
    batch: int
    feasible: bool
    throughput: float       # samples / second
    iteration_time: float   # seconds
    pcie_utilization: float
    peak_memory: int
    failure: str = ""


def throughput_sweep(
    model: str | Callable,
    policies: Sequence[str],
    batches: Sequence[int],
    gpu: GPUSpec,
    *,
    param_scale: float = 1.0,
    parallel: int | bool | None = None,
    backend: str | None = None,
    cache: CompileCache | None = None,
    cache_dir: str | None = None,
    **overrides,
) -> list[SweepPoint]:
    """Measure throughput of each policy at each sample size.

    Points are independent; ``parallel=`` fans them out over the chosen
    ``backend`` (threads by default; ``"process"`` sidesteps the GIL for
    compute-bound sweeps but requires a registry ``model`` name). With
    threads the shared ``cache`` (created here when not supplied) means
    each batch size is profiled once, not once per policy; with
    processes the same sharing goes through the ``cache_dir`` disk tier.
    Point order and values are identical across backends.
    """
    backend = resolve_backend(backend, parallel)
    cache = resolve_sweep_cache(backend, cache, cache_dir)
    specs = [
        ThroughputTaskSpec(
            model=model, policy=policy, batch=batch, gpu=gpu,
            param_scale=param_scale,
            overrides=freeze_overrides(overrides),
            cache_dir=cache_dir,
        )
        for policy in policies
        for batch in batches
    ]
    fn = (
        run_throughput_point
        if cache is None
        else functools.partial(run_throughput_point, cache=cache)
    )
    return parallel_map(fn, specs, parallel, backend=backend)


def speedups_over(
    points: list[SweepPoint], reference_policy: str,
) -> dict[tuple[str, int], float]:
    """Per-(policy, batch) speedup relative to a reference policy.

    Matches the paper's Figure 12 y-axis ("speedup over vDNN"). Points
    where the reference is infeasible are omitted.
    """
    reference = {
        p.batch: p.throughput
        for p in points
        if p.policy == reference_policy and p.feasible and p.throughput > 0
    }
    speedups: dict[tuple[str, int], float] = {}
    for point in points:
        base = reference.get(point.batch)
        if base and point.feasible:
            speedups[(point.policy, point.batch)] = point.throughput / base
    return speedups
