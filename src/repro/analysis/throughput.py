"""Throughput sweeps over sample size (Figures 12, 13, 15).

For each (policy, batch) point the sweep runs the full pipeline and
records throughput in samples/second; infeasible points are kept in the
series (throughput 0) so crossover and drop-out batch sizes are visible,
exactly as the paper's figures show policies "failing to run".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.analysis.parallel import parallel_map
from repro.analysis.runner import evaluate
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache
from repro.runtime.engine import EngineOptions


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, batch) measurement."""

    policy: str
    batch: int
    feasible: bool
    throughput: float       # samples / second
    iteration_time: float   # seconds
    pcie_utilization: float
    peak_memory: int
    failure: str = ""


def throughput_sweep(
    model: str | Callable,
    policies: Sequence[str],
    batches: Sequence[int],
    gpu: GPUSpec,
    *,
    param_scale: float = 1.0,
    parallel: int | bool | None = None,
    cache: CompileCache | None = None,
    **overrides,
) -> list[SweepPoint]:
    """Measure throughput of each policy at each sample size.

    Points are independent; ``parallel=`` fans them out over threads.
    The shared ``cache`` (created here when not supplied) means each
    batch size is profiled once, not once per policy — point order and
    values are identical either way.
    """
    options = EngineOptions(record_trace=False)
    if cache is None:
        cache = CompileCache()

    def run_point(point: tuple[str, int]) -> SweepPoint:
        policy, batch = point
        result = evaluate(
            model, policy, gpu, batch,
            param_scale=param_scale,
            engine_options=options,
            cache=cache,
            **overrides,
        )
        if result.feasible and result.trace is not None:
            trace = result.trace
            return SweepPoint(
                policy=policy,
                batch=batch,
                feasible=True,
                throughput=trace.throughput,
                iteration_time=trace.iteration_time,
                pcie_utilization=trace.pcie_utilization,
                peak_memory=trace.peak_memory,
            )
        return SweepPoint(
            policy=policy,
            batch=batch,
            feasible=False,
            throughput=0.0,
            iteration_time=float("inf"),
            pcie_utilization=0.0,
            peak_memory=0,
            failure=result.failure,
        )

    grid = [(policy, batch) for policy in policies for batch in batches]
    return parallel_map(run_point, grid, parallel)


def speedups_over(
    points: list[SweepPoint], reference_policy: str,
) -> dict[tuple[str, int], float]:
    """Per-(policy, batch) speedup relative to a reference policy.

    Matches the paper's Figure 12 y-axis ("speedup over vDNN"). Points
    where the reference is infeasible are omitted.
    """
    reference = {
        p.batch: p.throughput
        for p in points
        if p.policy == reference_policy and p.feasible and p.throughput > 0
    }
    speedups: dict[tuple[str, int], float] = {}
    for point in points:
        base = reference.get(point.batch)
        if base and point.feasible:
            speedups[(point.policy, point.batch)] = point.throughput / base
    return speedups
