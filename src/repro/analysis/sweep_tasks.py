"""Picklable sweep task specs and their module-level executors.

The sweeps in :mod:`repro.analysis` used to fan out closures, which a
thread pool happily runs but a :class:`~concurrent.futures.ProcessPoolExecutor`
cannot (closures don't pickle). Each sweep now describes a point as a
frozen **task spec** — registry model name + parameters, never callables
captured in a closure — and the functions in this module execute one
spec. Both halves pickle, so the same specs drive the serial, thread and
process backends and produce byte-identical point lists.

Worker processes cannot share the driver's in-memory
:class:`~repro.pipeline.CompileCache`; instead a spec names a
``cache_dir`` and :func:`worker_cache` materialises one disk-backed
cache *per process* per directory. Points running in the same worker
share the in-memory tier; points in different workers — and later
sessions — share profiles and plans through the content-addressed files.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.oversubscription import OversubscriptionPoint
    from repro.analysis.throughput import SweepPoint
    from repro.graph.graph import Graph

#: Process-global cache registry: one CompileCache per cache directory
#: (``None`` -> one shared in-memory cache for the whole process).
_CACHES: dict[str | None, CompileCache] = {}
_CACHES_LOCK = threading.Lock()


def worker_cache(cache_dir: str | os.PathLike | None) -> CompileCache:
    """The calling process's :class:`CompileCache` for a cache directory.

    Created on first use and then reused for the process lifetime, so
    every point a worker executes shares one in-memory tier; with a
    ``cache_dir`` the cache is additionally disk-backed and shared
    across workers and sessions.
    """
    key = (
        os.path.abspath(os.path.expanduser(os.fspath(cache_dir)))
        if cache_dir is not None
        else None
    )
    with _CACHES_LOCK:
        cache = _CACHES.get(key)
        if cache is None:
            cache = CompileCache(disk_dir=key)
            _CACHES[key] = cache
        return cache


def freeze_overrides(overrides: dict) -> tuple:
    """Model-builder keyword overrides as a picklable, frozen tuple."""
    return tuple(sorted(overrides.items()))


def canonical_point_bytes(points) -> bytes:
    """Canonical byte encoding of a sweep's point list.

    Dataclass points are flattened to sorted-key JSON; floats keep their
    shortest round-trip repr, so two lists encode identically iff every
    field is bit-identical. This is how tests and benchmarks assert that
    serial, thread and process sweeps agree — comparing raw pickles
    would false-negative on memoisation framing (the serial list shares
    string objects across points; IPC-returned points do not).
    """
    import json
    from dataclasses import asdict, is_dataclass

    def flatten(point):
        return asdict(point) if is_dataclass(point) else point

    return json.dumps(
        [flatten(p) for p in points], sort_keys=True, default=str,
    ).encode()


def _cache_or_worker(
    cache: CompileCache | None, cache_dir: str | None,
) -> CompileCache:
    return cache if cache is not None else worker_cache(cache_dir)


def resolve_sweep_cache(
    backend: str,
    cache: CompileCache | None,
    cache_dir: str | None,
) -> CompileCache | None:
    """The driver-side cache a sweep should close over, if any.

    Thread and serial backends share one in-memory (optionally
    disk-backed) cache by reference. The process backend returns ``None``
    — workers build their own through :func:`worker_cache` — and rejects
    an explicit in-memory ``cache``, which cannot cross process
    boundaries.
    """
    if backend == "process":
        if cache is not None:
            raise ValueError(
                "backend='process' cannot share the driver's in-memory "
                "CompileCache; pass cache_dir= to share artifacts "
                "through the persistent disk tier instead"
            )
        return None
    if cache is not None:
        return cache
    return CompileCache(disk_dir=cache_dir)


# -- throughput ------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputTaskSpec:
    """One (policy, batch) throughput point, by name."""

    model: str | Callable
    policy: str
    batch: int
    gpu: GPUSpec
    param_scale: float = 1.0
    overrides: tuple = ()
    cache_dir: str | None = None


def run_throughput_point(
    spec: ThroughputTaskSpec, cache: CompileCache | None = None,
) -> "SweepPoint":
    """Execute one throughput point (the old sweep closure, unrolled)."""
    from repro.analysis.runner import evaluate
    from repro.analysis.throughput import SweepPoint
    from repro.runtime.engine import EngineOptions

    cache = _cache_or_worker(cache, spec.cache_dir)
    result = evaluate(
        spec.model, spec.policy, spec.gpu, spec.batch,
        param_scale=spec.param_scale,
        engine_options=EngineOptions(record_trace=False),
        cache=cache,
        **dict(spec.overrides),
    )
    if result.feasible and result.trace is not None:
        trace = result.trace
        return SweepPoint(
            policy=spec.policy,
            batch=spec.batch,
            feasible=True,
            throughput=trace.throughput,
            iteration_time=trace.iteration_time,
            pcie_utilization=trace.pcie_utilization,
            peak_memory=trace.peak_memory,
        )
    return SweepPoint(
        policy=spec.policy,
        batch=spec.batch,
        feasible=False,
        throughput=0.0,
        iteration_time=float("inf"),
        pcie_utilization=0.0,
        peak_memory=0,
        failure=result.failure,
    )


# -- scaling ---------------------------------------------------------------


@dataclass(frozen=True)
class ScaleCellSpec:
    """One (model, policy) max-scale search cell, by name."""

    model: str | Callable
    policy: str
    gpu: GPUSpec
    axis: str = "sample"
    kwargs: tuple = ()
    cache_dir: str | None = None


def run_scale_cell(
    spec: ScaleCellSpec, cache: CompileCache | None = None,
) -> int:
    """Run one scale-table cell's exponential probe + binary search."""
    from repro.analysis.scaling import max_param_scale, max_sample_scale

    cache = _cache_or_worker(cache, spec.cache_dir)
    search = max_sample_scale if spec.axis == "sample" else max_param_scale
    return search(
        spec.model, spec.policy, spec.gpu, cache=cache, **dict(spec.kwargs),
    )


# -- oversubscription ------------------------------------------------------


@dataclass(frozen=True)
class OversubscriptionTaskSpec:
    """One (policy, ratio) point of an over-subscription sweep.

    Carries the (picklable) graph itself — over-subscription fixes the
    workload, so there is no registry name + batch to rebuild it from —
    plus the unconstrained reference iteration time computed up front.
    ``policy`` is a registry name or a (picklable) policy instance.
    """

    graph: "Graph"
    policy: object
    ratio: float
    capacity: int
    gpu: GPUSpec
    reference_time: float
    cache_dir: str | None = None


@dataclass(frozen=True)
class OversubscriptionReferenceSpec:
    """The unconstrained (big-device) reference run for one policy."""

    graph: "Graph"
    policy: object
    capacity: int
    gpu: GPUSpec
    cache_dir: str | None = None


def _policy_name(policy) -> str:
    return policy if isinstance(policy, str) else policy.name


def run_oversubscription_reference(
    spec: OversubscriptionReferenceSpec, cache: CompileCache | None = None,
) -> tuple[str, float]:
    """One policy's reference iteration time on an unconstrained device."""
    from repro.analysis.runner import run_policy
    from repro.runtime.engine import EngineOptions

    cache = _cache_or_worker(cache, spec.cache_dir)
    result = run_policy(
        spec.graph, spec.policy, spec.gpu.with_memory(spec.capacity),
        engine_options=EngineOptions(record_trace=False), cache=cache,
    )
    return _policy_name(spec.policy), result.iteration_time


def run_oversubscription_point(
    spec: OversubscriptionTaskSpec, cache: CompileCache | None = None,
) -> "OversubscriptionPoint":
    """Execute one over-subscription point on the shrunk device."""
    from repro.analysis.oversubscription import OversubscriptionPoint
    from repro.analysis.runner import run_policy
    from repro.runtime.engine import EngineOptions

    cache = _cache_or_worker(cache, spec.cache_dir)
    result = run_policy(
        spec.graph, spec.policy, spec.gpu.with_memory(spec.capacity),
        engine_options=EngineOptions(record_trace=False), cache=cache,
    )
    slowdown = (
        result.iteration_time / spec.reference_time
        if result.feasible and spec.reference_time not in (0.0, float("inf"))
        else float("inf")
    )
    return OversubscriptionPoint(
        policy=_policy_name(spec.policy),
        ratio=spec.ratio,
        capacity=spec.capacity,
        feasible=result.feasible,
        throughput=result.throughput,
        slowdown_vs_full=slowdown,
    )


# -- footprint -------------------------------------------------------------


@dataclass(frozen=True)
class FootprintCellSpec:
    """One (batch, param_scale) memory-requirement grid cell."""

    builder: str | Callable
    batch: int
    param_scale: float
    overrides: tuple = ()


def run_footprint_cell(spec: FootprintCellSpec) -> int:
    """Build one grid cell's graph and measure its liveness peak."""
    from repro.analysis.footprint import model_memory_requirement

    overrides = dict(spec.overrides)
    if isinstance(spec.builder, str):
        from repro.models.registry import build_model

        graph = build_model(
            spec.builder, spec.batch,
            param_scale=spec.param_scale, **overrides,
        )
    else:
        graph = spec.builder(
            spec.batch, param_scale=spec.param_scale, **overrides,
        )
    return model_memory_requirement(graph)

# -- dynamic replanning ----------------------------------------------------


@dataclass(frozen=True)
class ReplanTaskSpec:
    """One (intensity, seed) static-vs-dynamic replanning point, by name.

    Everything is registry names plus scalars, so the spec pickles to
    the process backend; the executor returns a plain dict whose
    ``stream_digest`` is the content hash of the dynamic run's executed
    program history — byte-identical digests across serial, thread and
    process backends are the replan-determinism contract.
    """

    model: str
    batch: int
    policy: str
    gpu: GPUSpec
    fault_class: str
    intensity: float
    seed: int
    iterations: int = 4
    param_scale: float = 1.0
    overrides: tuple = ()
    cache_dir: str | None = None


# -- memscope --------------------------------------------------------------


@dataclass(frozen=True)
class MemscopeTaskSpec:
    """One memscope-instrumented run, by name.

    Registry names plus scalars only, so the spec pickles to every
    backend; the executor returns a plain dict whose ``timeline_digest``
    and ``report_digest`` are content hashes of the shadow pool's
    address-space timeline and the full report — byte-identical digests
    across serial, thread and process backends are the memscope
    determinism contract.
    """

    model: str
    policy: str
    batch: int
    gpu: GPUSpec
    capacity_frac: float = 1.0
    strategy: str = "best_fit"
    param_scale: float = 1.0
    overrides: tuple = ()
    cache_dir: str | None = None


def run_memscope_point(
    spec: MemscopeTaskSpec, cache: CompileCache | None = None,
) -> dict:
    """Execute one memscope point and hash its artifacts."""
    from repro.analysis.memscope import run_memscope

    cache = _cache_or_worker(cache, spec.cache_dir)
    run = run_memscope(
        spec.model, spec.policy, spec.gpu, spec.batch,
        param_scale=spec.param_scale, capacity_frac=spec.capacity_frac,
        strategy=spec.strategy, cache=cache, **dict(spec.overrides),
    )
    report = run.report
    postmortem = run.observer.postmortem
    return {
        "model": spec.model,
        "policy": spec.policy,
        "batch": spec.batch,
        "capacity_frac": spec.capacity_frac,
        "strategy": spec.strategy,
        "feasible": report.feasible,
        "peak_memory": report.peak_memory,
        "records": len(report.timeline.records),
        "classification": (
            postmortem.classification if postmortem is not None else ""
        ),
        "timeline_digest": report.timeline.digest(),
        "report_digest": report.digest(),
    }


def run_replan_point(
    spec: ReplanTaskSpec, cache: CompileCache | None = None,
) -> dict:
    """Execute one replanning point: the same seeded fault schedule run
    statically and with the feedback loop attached."""
    from repro.faults.chaos import fault_class_config
    from repro.models.registry import build_model
    from repro.pipeline.compile import compile_run

    cache = _cache_or_worker(cache, spec.cache_dir)
    graph = build_model(
        spec.model, spec.batch,
        param_scale=spec.param_scale, **dict(spec.overrides),
    )
    faults = fault_class_config(spec.fault_class, spec.intensity, spec.seed)
    static = compile_run(
        graph, spec.policy, spec.gpu, cache=cache,
        iterations=spec.iterations, faults=faults,
    )
    dynamic = compile_run(
        graph, spec.policy, spec.gpu, cache=cache,
        iterations=spec.iterations, faults=faults, replan=True,
    )
    rep = dynamic.replan
    return {
        "model": spec.model,
        "policy": spec.policy,
        "fault_class": spec.fault_class,
        "intensity": spec.intensity,
        "seed": spec.seed,
        "static_feasible": static.result.feasible,
        "dynamic_feasible": dynamic.result.feasible,
        "static_time_s": (
            sum(static.executed.durations)
            if static.result.feasible else 0.0
        ),
        "dynamic_time_s": (
            sum(dynamic.executed.durations)
            if dynamic.result.feasible else 0.0
        ),
        "replans": rep.replans if rep else 0,
        "reverts": rep.reverts if rep else 0,
        "stream_digest": rep.stream_digest() if rep else "",
    }
