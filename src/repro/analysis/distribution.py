"""Tensor-size distributions (Table II).

The paper motivates tensor splitting by showing BERT-Large carries many
very large tensors (13.41% above 500 MB at their configuration). The
bucket boundaries here are the paper's.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.tensor import TensorKind
from repro.units import MB

#: (label, lower bound inclusive, upper bound exclusive), paper buckets.
SIZE_BUCKETS: list[tuple[str, int, float]] = [
    ("< 1MB", 0, 1 * MB),
    ("1 ~ 10MB", 1 * MB, 10 * MB),
    ("10 ~ 50MB", 10 * MB, 50 * MB),
    ("50 ~ 100MB", 50 * MB, 100 * MB),
    ("100 ~ 500MB", 100 * MB, 500 * MB),
    ("> 500MB", 500 * MB, float("inf")),
]

#: Kinds counted as "tensors of the training workload" (weights,
#: feature maps and their gradients — what the memory manager moves).
_COUNTED_KINDS = frozenset({
    TensorKind.PARAM,
    TensorKind.ACTIVATION,
    TensorKind.GRAD_ACTIVATION,
    TensorKind.GRAD_PARAM,
})


def tensor_size_distribution(
    graph: Graph, *, weight_by_bytes: bool = False,
) -> dict[str, float]:
    """Fraction of tensors (or bytes) falling in each size bucket."""
    tensors = [
        t for t in graph.tensors.values() if t.kind in _COUNTED_KINDS
    ]
    if not tensors:
        return {label: 0.0 for label, _, _ in SIZE_BUCKETS}
    totals = {label: 0.0 for label, _, _ in SIZE_BUCKETS}
    denominator = 0.0
    for tensor in tensors:
        size = tensor.size_bytes
        weight = float(size) if weight_by_bytes else 1.0
        denominator += weight
        for label, lo, hi in SIZE_BUCKETS:
            if lo <= size < hi:
                totals[label] += weight
                break
    return {
        label: totals[label] / denominator for label, _, _ in SIZE_BUCKETS
    }
