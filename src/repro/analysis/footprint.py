"""Memory-requirement analysis (Figures 1, 2a, 4).

Figure 1 plots the raw (un-optimised) training memory requirement of
BERT-Large over a (sample scale x parameter scale) grid, with per-GPU
trainability frontiers. These need only graph construction + liveness —
no execution — so full grids are cheap.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.parallel import parallel_map, resolve_backend
from repro.analysis.sweep_tasks import (
    FootprintCellSpec,
    freeze_overrides,
    run_footprint_cell,
)
from repro.graph.graph import Graph
from repro.graph.liveness import memory_curve
from repro.graph.scheduler import dfs_schedule
from repro.hardware.gpu import GPUSpec


def model_memory_requirement(graph: Graph) -> int:
    """Peak un-optimised training memory requirement, in bytes."""
    schedule = dfs_schedule(graph)
    curve = memory_curve(graph, schedule)
    return int(curve.max()) if len(curve) else 0


def memory_requirement_grid(
    builder: str | Callable[..., Graph],
    sample_scales: Sequence[int],
    param_scales: Sequence[float],
    *,
    parallel: int | bool | None = None,
    backend: str | None = None,
    **overrides,
) -> dict[tuple[int, float], int]:
    """Peak memory for every (batch, param_scale) combination.

    ``builder`` is a registry model name or a callable following the
    registry signature ``(batch, *, param_scale=..., **overrides)``.
    Grid cells are independent (build + liveness, no execution) and fan
    out over the chosen ``backend`` with ``parallel=`` (use a registry
    name — or any picklable callable — with ``backend="process"``).
    """
    cells = [
        (batch, scale)
        for batch in sample_scales
        for scale in param_scales
    ]
    specs = [
        FootprintCellSpec(
            builder=builder, batch=batch, param_scale=scale,
            overrides=freeze_overrides(overrides),
        )
        for batch, scale in cells
    ]
    backend = resolve_backend(backend, parallel)
    return dict(zip(
        cells, parallel_map(run_footprint_cell, specs, parallel,
                            backend=backend),
    ))


def max_trainable_scale(
    grid: dict[tuple[int, float], int],
    gpu: GPUSpec,
) -> list[tuple[int, float]]:
    """Grid points trainable without optimisation on a GPU (Figure 1's
    "below the black line" region)."""
    return sorted(
        key for key, peak in grid.items() if peak <= gpu.memory_bytes
    )
