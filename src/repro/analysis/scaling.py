"""Maximum trainable scale searches (Tables IV, V, VI, VII).

*Sample scale* fixes the parameter size and searches the largest batch a
policy can train on a given GPU; *parameter scale* fixes the batch at 16
and searches the largest channel/hidden multiplier. Both use exponential
growth followed by binary search over the feasibility predicate
"the policy plans AND the engine executes without OOM".
"""

from __future__ import annotations

import functools
from collections.abc import Callable

from repro.analysis.parallel import parallel_map, resolve_backend
from repro.analysis.runner import EvalResult, evaluate
from repro.analysis.sweep_tasks import (
    ScaleCellSpec,
    freeze_overrides,
    resolve_sweep_cache,
    run_scale_cell,
)
from repro.core.augment import AugmentOptions
from repro.hardware.gpu import GPUSpec
from repro.pipeline import CompileCache
from repro.policies.base import MemoryPolicy, get_policy
from repro.runtime.engine import EngineOptions

#: Batch the paper fixes for parameter-scale experiments (Table V).
PARAM_SCALE_BATCH = 16

_FAST_ENGINE = EngineOptions(record_trace=False)


def _feasible(
    model: str | Callable,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    batch: int,
    param_scale: float,
    augment_options: AugmentOptions | None,
    cache: CompileCache | None = None,
    **overrides,
) -> EvalResult:
    return evaluate(
        model, policy, gpu, batch,
        param_scale=param_scale,
        augment_options=augment_options,
        engine_options=_FAST_ENGINE,
        cache=cache,
        **overrides,
    )


def _search_max(predicate: Callable[[int], bool], start: int, cap: int) -> int:
    """Largest integer n in [0, cap] with predicate(n); 0 if none.

    Exponential probe from ``start`` then binary search. ``predicate``
    is assumed monotone (feasible below, infeasible above).
    """
    if cap < 1 or not predicate(max(1, start)):
        # Even the starting point fails: search downward range [1, start].
        lo, hi = 0, max(1, start)
        if hi == 1:
            return 1 if cap >= 1 and predicate(1) else 0
    else:
        lo = max(1, start)
        hi = lo
        while hi < cap:
            nxt = min(cap, hi * 2)
            if nxt == hi:
                break
            if predicate(nxt):
                lo = hi = nxt
            else:
                hi = nxt
                break
        if hi >= cap and predicate(cap):
            return cap
    # Invariant: feasible(lo) (or lo == 0), infeasible(hi).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if predicate(mid):
            lo = mid
        else:
            hi = mid
    return lo


def max_sample_scale(
    model: str | Callable,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    param_scale: float = 1.0,
    start: int = 8,
    cap: int = 4096,
    augment_options: AugmentOptions | None = None,
    cache: CompileCache | None = None,
    **overrides,
) -> int:
    """Largest trainable batch size; 0 when even batch 1 fails."""
    if isinstance(policy, str):
        policy = get_policy(policy)

    def predicate(batch: int) -> bool:
        return _feasible(
            model, policy, gpu, batch, param_scale, augment_options,
            cache=cache, **overrides,
        ).feasible

    return _search_max(predicate, start, cap)


def max_param_scale(
    model: str | Callable,
    policy: MemoryPolicy | str,
    gpu: GPUSpec,
    *,
    batch: int = PARAM_SCALE_BATCH,
    start: int = 1,
    cap: int = 512,
    augment_options: AugmentOptions | None = None,
    cache: CompileCache | None = None,
    **overrides,
) -> int:
    """Largest trainable integer parameter-scale multiplier; 0 if none."""
    if isinstance(policy, str):
        policy = get_policy(policy)

    def predicate(k: int) -> bool:
        return _feasible(
            model, policy, gpu, batch, float(k), augment_options,
            cache=cache, **overrides,
        ).feasible

    return _search_max(predicate, start, cap)


def scale_table(
    models: list[str],
    policies: list[str],
    gpu: GPUSpec,
    *,
    axis: str = "sample",
    parallel: int | bool | None = None,
    backend: str | None = None,
    cache: CompileCache | None = None,
    cache_dir: str | None = None,
    **kwargs,
) -> dict[str, dict[str, int]]:
    """Reproduce one of the paper's scale tables.

    Returns ``{model: {policy: max_scale}}``; 0 encodes both "infeasible
    at any scale" and "policy inapplicable" (the paper's "x").

    Each (model, policy) cell is an independent search, so ``parallel=``
    fans the cells out over the chosen ``backend``; each search is
    itself sequential (exponential probe + binary search). The shared
    ``cache`` (threads) or the ``cache_dir`` disk tier (processes) lets
    different policies probing the same (model, scale) point reuse one
    profile.
    """
    if axis not in ("sample", "parameter"):
        raise ValueError(f"axis must be 'sample' or 'parameter', not {axis!r}")
    backend = resolve_backend(backend, parallel)
    cache = resolve_sweep_cache(backend, cache, cache_dir)
    cells = [(model, policy) for model in models for policy in policies]
    specs = [
        ScaleCellSpec(
            model=model, policy=policy, gpu=gpu, axis=axis,
            kwargs=freeze_overrides(kwargs), cache_dir=cache_dir,
        )
        for model, policy in cells
    ]
    fn = (
        run_scale_cell
        if cache is None
        else functools.partial(run_scale_cell, cache=cache)
    )
    results = parallel_map(fn, specs, parallel, backend=backend)
    table: dict[str, dict[str, int]] = {model: {} for model in models}
    for (model, policy), value in zip(cells, results):
        table[model][policy] = value
    return table
