"""Replay an execution's allocation sequence through the memory pool.

The engine accounts memory in bytes (capacity feasibility); this module
replays the same allocate/free event stream through the
:class:`~repro.hardware.memory_pool.MemoryPool` to measure *placement*
effects — external fragmentation and failed allocations under best-fit
versus first-fit/worst-fit — backing the Section V-C/V-D design claims
(allocator ablation bench).

The event stream comes from :attr:`ExecutionTrace.alloc_events`
(recorded when engine tracing is on): exact chronological ``(time,
label, +/-bytes)`` entries covering compute outputs, workspaces,
swap-ins and all releases. The persistent region (weights, optimizer
state, inputs) is allocated once up front, as the paper's pre-allocated
pool does.

The engine itself dispatches in chronological order, so its
``peak_memory`` *is* the chronological peak; :func:`chronological_peak`
re-derives the same number from the allocation log as an independent
cross-check (it is an invariant, not a correction — the two must agree
byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError
from repro.hardware.memory_pool import PERSISTENT_LABEL, MemoryPool
from repro.runtime.trace import ExecutionTrace


@dataclass(frozen=True)
class ReplayResult:
    """Pool behaviour over one execution's allocation stream.

    ``largest_free_block`` and ``free_block_count`` describe the pool's
    free-space structure *at the failure instant* when the replay OOMed
    (the forensically relevant state: a large ``free_block_count`` with
    a small ``largest_free_block`` means the failure was fragmentation,
    not capacity), and at the end of the stream otherwise.

    The ``max_fragmentation_time`` / ``frag_*`` fields freeze the
    free-space shape at the *time-of-max-fragmentation* instant — also
    on non-failing runs, so bench tables and postmortems can compare
    strategies that never OOMed (failure-instant stats alone say
    nothing about a replay that survived).

    ``peak_extent`` is the high-watermark address the placement
    actually touched (``max(offset + size)``); under the ``"planned"``
    strategy it reproduces the address plan's ``packed_peak``
    byte-for-byte when every allocation hit its planned slot
    (``plan_misses == 0``).
    """

    strategy: str
    succeeded: bool
    failed_at: str = ""
    peak_used: int = 0
    max_fragmentation: float = 0.0
    alloc_count: int = 0
    largest_free_block: int = 0
    free_block_count: int = 0
    max_fragmentation_time: float = 0.0
    frag_largest_free_block: int = 0
    frag_free_block_count: int = 0
    frag_free_bytes: int = 0
    peak_extent: int = 0
    plan_hits: int = 0
    plan_misses: int = 0


def chronological_peak(trace: ExecutionTrace) -> int:
    """Peak bytes live at any instant, re-derived from the allocation log.

    Accumulates ``alloc_events`` *in recorded order* on top of the
    persistent region. The log is appended exactly as the engine's
    ledger applies each event, so the recorded order already encodes
    the ledger's conventions — pending frees commit before a later
    allocation at the same instant, but a zero-duration op's output
    allocation lands *before* its inputs' releases at that instant
    (both buffers are resident while the kernel runs). Re-sorting with
    frees-first at equal timestamps would understate the peak in that
    second case. Cross-checks the engine's chronologically-exact
    ``peak_memory``: the two are equal for every traced run.
    """
    used = trace.persistent_bytes
    peak = used
    for _, _, nbytes in trace.alloc_events:
        used += nbytes
        if used > peak:
            peak = used
    return peak


def replay_allocations(
    trace: ExecutionTrace,
    capacity: int,
    *,
    strategy: str = "best_fit",
    plan=None,
) -> ReplayResult:
    """Replay a trace's alloc/free events through a pool.

    Events are applied in recorded order — the engine's exact ledger
    application order, which already commits pending frees before a
    later allocation at the same instant but keeps a zero-duration
    op's inputs resident until after its output allocation. Releases
    without a live handle (e.g. events trimmed by tracing) are ignored.

    A release event carries the freed byte count, and labels are not
    unique — one label can have several live allocations of *different*
    sizes (e.g. a tensor's full buffer and a micro-piece). The freed
    handle is therefore matched to the event's ``|nbytes|`` among the
    label's live handles, falling back to FIFO only when no size
    matches; freeing per-label FIFO regardless of size would release the
    wrong block and silently diverge the pool from the ledger.

    ``plan`` threads an :class:`~repro.planner.address_plan.AddressPlan`
    into the pool — required by (and only meaningful under) the
    ``"planned"`` strategy.
    """
    events = trace.alloc_events
    pool = MemoryPool(capacity=capacity, strategy=strategy, plan=plan)
    #: Max-fragmentation snapshot: (fragmentation, time, largest free
    #: block, free block count, free bytes) at the worst instant so far.
    max_frag = 0.0
    frag_snapshot = (0.0, 0, 0, 0)

    def watch_fragmentation(time: float) -> None:
        nonlocal max_frag, frag_snapshot
        frag = pool.fragmentation()
        if frag > max_frag:
            max_frag = frag
            frag_snapshot = (
                time, pool.largest_free_block, len(pool.free_blocks()),
                pool.free_bytes,
            )

    persistent_handle = None
    if trace.persistent_bytes:
        try:
            persistent_handle = pool.alloc(
                trace.persistent_bytes, label=PERSISTENT_LABEL, time=0.0,
            )
        except OutOfMemoryError:
            return ReplayResult(
                strategy=strategy, succeeded=False,
                failed_at="<persistent region>",
                largest_free_block=pool.stats.largest_free_block,
                free_block_count=pool.stats.free_block_count,
            )
    #: label -> live (handle, requested bytes) pairs, oldest first.
    handles: dict[str, list[tuple[int, int]]] = {}
    for time, label, nbytes in events:
        if nbytes > 0:
            try:
                handle = pool.alloc(nbytes, label=label, time=time)
            except OutOfMemoryError:
                # Fragmentation at the failure instant, not as of the
                # last successful event — an OOM caused by external
                # fragmentation must not be understated. The free-list
                # shape stats are likewise frozen at this instant
                # (``alloc`` mirrors them before raising).
                return ReplayResult(
                    strategy=strategy,
                    succeeded=False,
                    failed_at=label,
                    peak_used=pool.stats.peak_used,
                    max_fragmentation=max(max_frag, pool.fragmentation()),
                    alloc_count=pool.stats.alloc_count,
                    largest_free_block=pool.stats.largest_free_block,
                    free_block_count=pool.stats.free_block_count,
                    max_fragmentation_time=frag_snapshot[0],
                    frag_largest_free_block=frag_snapshot[1],
                    frag_free_block_count=frag_snapshot[2],
                    frag_free_bytes=frag_snapshot[3],
                    peak_extent=pool.stats.peak_extent,
                    plan_hits=pool.stats.plan_hits,
                    plan_misses=pool.stats.plan_misses,
                )
            handles.setdefault(label, []).append((handle, nbytes))
        else:
            pending = handles.get(label)
            if pending:
                size = -nbytes
                index = next(
                    (i for i, (_, sz) in enumerate(pending) if sz == size),
                    0,  # no size match: fall back to oldest-first
                )
                handle, _ = pending.pop(index)
                try:
                    pool.free(handle, time=time)
                except AllocationError:  # pragma: no cover - defensive
                    pass
        watch_fragmentation(time)
    assert persistent_handle is None or persistent_handle >= 0
    return ReplayResult(
        strategy=strategy,
        succeeded=True,
        peak_used=pool.stats.peak_used,
        max_fragmentation=max_frag,
        alloc_count=pool.stats.alloc_count,
        largest_free_block=pool.stats.largest_free_block,
        free_block_count=pool.stats.free_block_count,
        max_fragmentation_time=frag_snapshot[0],
        frag_largest_free_block=frag_snapshot[1],
        frag_free_block_count=frag_snapshot[2],
        frag_free_bytes=frag_snapshot[3],
        peak_extent=pool.stats.peak_extent,
        plan_hits=pool.stats.plan_hits,
        plan_misses=pool.stats.plan_misses,
    )
