"""Plain-text reporting: memory timelines, stream Gantt charts, tables.

Everything renders to monospace text (no plotting dependencies), sized
for terminals and logs. Used by the examples, handy when debugging plans
("where does the peak sit?", "is the D2H stream actually busy?").
"""

from __future__ import annotations

import numpy as np

from repro.runtime.trace import ExecutionTrace
from repro.units import format_bytes

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 72) -> str:
    """Downsample a series into a unicode sparkline of ``width`` chars."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return ""
    if array.size > width:
        edges = np.linspace(0, array.size, width + 1).astype(int)
        array = np.array([
            array[lo:hi].max() if hi > lo else array[min(lo, array.size - 1)]
            for lo, hi in zip(edges[:-1], edges[1:])
        ])
    top = array.max()
    if top <= 0:
        return _BARS[0] * len(array)
    scaled = np.clip((array / top) * (len(_BARS) - 1), 0, len(_BARS) - 1)
    return "".join(_BARS[int(round(s))] for s in scaled)


def memory_timeline(trace: ExecutionTrace, width: int = 72) -> str:
    """Render a trace's device-memory usage over time.

    One sparkline over the sampled usage, annotated with the peak and
    where (as a fraction of the iteration) it occurs — the visual
    equivalent of the paper's Figure 2(a) / Figure 4 curves.
    """
    curve = trace.memory_curve()
    if curve.shape[0] == 0:
        return "(no memory samples recorded)"
    times, used = curve[:, 0], curve[:, 1]
    peak_at = float(times[int(np.argmax(used))])
    horizon = max(trace.iteration_time, 1e-12)
    lines = [
        sparkline(used, width),
        f"peak {format_bytes(int(used.max()))} at "
        f"{peak_at / horizon:.0%} of the iteration; "
        f"final {format_bytes(int(used[-1]))}",
    ]
    return "\n".join(lines)


def stream_gantt(
    trace: ExecutionTrace, width: int = 72,
) -> str:
    """Busy/idle occupancy of each stream over the iteration.

    Each row is one stream; a cell is '█' when the stream is busy during
    that time slice, '·' when idle. Shows at a glance how well transfers
    hide behind compute (the overlap Equation 3 is about).
    """
    horizon = trace.iteration_time
    if horizon <= 0 or not trace.records:
        return "(no records)"
    streams = ["compute", "d2h", "h2d", "cpu"]
    edges = np.linspace(0.0, horizon, width + 1)
    rows = []
    for stream in streams:
        intervals = [
            (r.start, r.end) for r in trace.records if r.stream == stream
        ]
        if not intervals:
            continue
        cells = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            busy = any(start < hi and end > lo for start, end in intervals)
            cells.append("█" if busy else "·")
        busy_total = sum(end - start for start, end in intervals)
        rows.append(
            f"{stream:>8s} |{''.join(cells)}| {busy_total / horizon:5.1%}"
        )
    return "\n".join(rows)


def trace_report(trace: ExecutionTrace, width: int = 72) -> str:
    """Full text report of one execution."""
    sections = [
        trace.describe(),
        "",
        "device memory:",
        memory_timeline(trace, width),
        "",
        "stream occupancy:",
        stream_gantt(trace, width),
    ]
    if trace.host_peak_bytes:
        sections.append("")
        sections.append(
            f"host memory peak: {format_bytes(trace.host_peak_bytes)}"
        )
    return "\n".join(sections)


def comparison_table(
    rows: dict[str, ExecutionTrace | None],
) -> str:
    """One-line-per-policy comparison of executed traces."""
    header = (
        f"{'policy':>18s} {'iter_ms':>10s} {'samples/s':>10s} "
        f"{'peak':>10s} {'pcie':>7s} {'recompute_ms':>13s}"
    )
    lines = [header, "-" * len(header)]
    for name, trace in rows.items():
        if trace is None:
            lines.append(f"{name:>18s} {'infeasible':>10s}")
            continue
        lines.append(
            f"{name:>18s} {trace.iteration_time * 1e3:10.1f} "
            f"{trace.throughput:10.1f} "
            f"{format_bytes(trace.peak_memory):>10s} "
            f"{trace.pcie_utilization:7.1%} "
            f"{trace.recompute_time * 1e3:13.1f}"
        )
    return "\n".join(lines)
