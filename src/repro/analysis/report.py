"""Plain-text reporting: memory timelines, stream Gantt charts, tables.

Everything renders to monospace text (no plotting dependencies), sized
for terminals and logs. Used by the examples, handy when debugging plans
("where does the peak sit?", "is the D2H stream actually busy?").

The ``explain_*`` functions at the bottom render planner decision
provenance (:class:`~repro.telemetry.provenance.PlanExplanation`) as a
markdown or JSON report — the backend of ``python -m repro explain``.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.trace import ExecutionTrace
from repro.units import format_bytes, format_time

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 72) -> str:
    """Downsample a series into a unicode sparkline of ``width`` chars."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return ""
    if array.size > width:
        edges = np.linspace(0, array.size, width + 1).astype(int)
        array = np.array([
            array[lo:hi].max() if hi > lo else array[min(lo, array.size - 1)]
            for lo, hi in zip(edges[:-1], edges[1:])
        ])
    top = array.max()
    if top <= 0:
        return _BARS[0] * len(array)
    scaled = np.clip((array / top) * (len(_BARS) - 1), 0, len(_BARS) - 1)
    return "".join(_BARS[int(round(s))] for s in scaled)


def memory_timeline(trace: ExecutionTrace, width: int = 72) -> str:
    """Render a trace's device-memory usage over time.

    One sparkline over the sampled usage, annotated with the peak and
    where (as a fraction of the iteration) it occurs — the visual
    equivalent of the paper's Figure 2(a) / Figure 4 curves.
    """
    curve = trace.memory_curve()
    if curve.shape[0] == 0:
        return "(no memory samples recorded)"
    times, used = curve[:, 0], curve[:, 1]
    peak_at = float(times[int(np.argmax(used))])
    horizon = max(trace.iteration_time, 1e-12)
    lines = [
        sparkline(used, width),
        f"peak {format_bytes(int(used.max()))} at "
        f"{peak_at / horizon:.0%} of the iteration; "
        f"final {format_bytes(int(used[-1]))}",
    ]
    return "\n".join(lines)


def stream_gantt(
    trace: ExecutionTrace, width: int = 72,
) -> str:
    """Busy/idle occupancy of each stream over the iteration.

    Each row is one stream; a cell is '█' when the stream is busy during
    that time slice, '·' when idle. Shows at a glance how well transfers
    hide behind compute (the overlap Equation 3 is about).
    """
    horizon = trace.iteration_time
    if horizon <= 0 or not trace.records:
        return "(no records)"
    streams = ["compute", "d2h", "h2d", "cpu"]
    edges = np.linspace(0.0, horizon, width + 1)
    rows = []
    for stream in streams:
        intervals = [
            (r.start, r.end) for r in trace.records if r.stream == stream
        ]
        if not intervals:
            continue
        cells = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            busy = any(start < hi and end > lo for start, end in intervals)
            cells.append("█" if busy else "·")
        busy_total = sum(end - start for start, end in intervals)
        rows.append(
            f"{stream:>8s} |{''.join(cells)}| {busy_total / horizon:5.1%}"
        )
    return "\n".join(rows)


def trace_report(trace: ExecutionTrace, width: int = 72) -> str:
    """Full text report of one execution."""
    sections = [
        trace.describe(),
        "",
        "device memory:",
        memory_timeline(trace, width),
        "",
        "stream occupancy:",
        stream_gantt(trace, width),
    ]
    if trace.host_peak_bytes:
        sections.append("")
        sections.append(
            f"host memory peak: {format_bytes(trace.host_peak_bytes)}"
        )
    return "\n".join(sections)


def stall_attribution(trace: ExecutionTrace) -> dict:
    """Where the iteration's non-compute time went.

    Returns absolute seconds and fractions-of-iteration for memory
    stalls, D2H/H2D transfer busy time, recomputation, and the
    full-duplex PCIe utilisation — the runtime counterpart of the
    planner's estimated ΔT.
    """
    horizon = max(trace.iteration_time, 1e-12)
    return {
        "iteration_time": trace.iteration_time,
        "memory_stall": trace.memory_stall,
        "stall_fraction": trace.stall_fraction,
        "d2h_busy": trace.d2h_busy,
        "h2d_busy": trace.h2d_busy,
        "recompute_time": trace.recompute_time,
        "recompute_fraction": min(1.0, trace.recompute_time / horizon),
        "pcie_utilization": trace.pcie_utilization,
        "compute_utilization": trace.compute_utilization,
    }


def _strategy_bytes(plan, graph) -> dict:
    """Per-strategy byte totals for a plan (Figure 14b shape)."""
    totals = {
        option.value: nbytes
        for option, nbytes in plan.option_bytes(graph).items()
    }
    split_ids = plan.split_tensors()
    totals["split"] = sum(
        graph.tensors[tid].size_bytes for tid in split_ids
    )
    return {"bytes": totals, "split_tensors": len(split_ids)}


def explain_json(
    explanation, *, graph=None, plan=None, trace=None, memscope=None,
    top: int = 10,
) -> dict:
    """Machine-readable explain report.

    Bundles the full decision provenance with the per-strategy byte
    totals (when ``plan`` + ``graph`` are given), the runtime stall
    attribution (when ``trace`` is given), and the allocation-level
    memscope findings (when a :class:`~repro.analysis.memscope.
    MemscopeReport` is given).
    """
    payload = {
        "explanation": explanation.to_dict(),
        "kind_counts": explanation.kind_counts(),
        "total_delta_t": explanation.total_delta_t(),
        "top_decisions": [d.index for d in explanation.top_decisions(top)],
    }
    if plan is not None and graph is not None:
        payload["strategies"] = _strategy_bytes(plan, graph)
    if trace is not None:
        payload["runtime"] = stall_attribution(trace)
        payload["recovery"] = fault_recovery(trace)
    if memscope is not None:
        payload["memscope"] = memscope.to_json()
    return payload


def fault_recovery(trace: ExecutionTrace) -> dict:
    """The trace's fault-recovery and replanning activity, rolled up.

    All zeros on a clean static run; non-zero entries mean the engine
    retried failed transfers, emergency-evicted under pressure, refetched
    evicted tensors, or hot-swapped a replanned program mid-run.
    """
    return {
        "recovery_actions": trace.recovery_actions,
        "transfer_retries": trace.transfer_retries,
        "retry_backoff_time": trace.retry_backoff_time,
        "emergency_evictions": trace.emergency_evictions,
        "emergency_evicted_bytes": trace.emergency_evicted_bytes,
        "emergency_refetches": trace.emergency_refetches,
        "emergency_refetched_bytes": trace.emergency_refetched_bytes,
        "recovered_skips": trace.recovered_skips,
        "plan_swaps": trace.plan_swaps,
    }


def _decision_row(decision) -> str:
    peak = decision.peak_delta
    return (
        f"| {decision.index} | {decision.step} | {decision.op} | "
        f"{decision.tensor} | {decision.strategy} | "
        f"{decision.delta_m / 2**20:.1f} | "
        f"{decision.delta_t * 1e3:.3f} | "
        f"{format_bytes(decision.peak_before)} → "
        f"{format_bytes(decision.peak_after)} "
        f"({peak / 2**20:+.1f}MB) |"
    )


def explain_markdown(
    explanation, *, graph=None, plan=None, trace=None, memscope=None,
    top: int = 10,
) -> str:
    """Render a PlanExplanation as a markdown report.

    Sections: planning summary, the full decision table (every accepted
    split/swap/recompute decision with its cost delta and peak-memory
    effect), the ``top`` most expensive decisions with their rejected
    alternatives, per-strategy byte totals, the runtime stall
    attribution (when a trace is given), and — when a
    :class:`~repro.analysis.memscope.MemscopeReport` is given — the
    allocation-level residency/forensics sections.
    """
    lines = [
        f"# Plan explanation: {explanation.graph} "
        f"[{explanation.policy}]",
        "",
        f"- capacity {format_bytes(explanation.capacity)}, "
        f"budget {format_bytes(int(explanation.budget))}",
        f"- peak memory {format_bytes(explanation.baseline_peak)} → "
        f"{format_bytes(explanation.final_peak)}",
        f"- estimated iteration time "
        f"{explanation.baseline_time * 1e3:.1f} → "
        f"{explanation.estimated_time * 1e3:.1f} ms "
        f"(ΔT {explanation.total_delta_t() * 1e3:.1f} ms)",
        f"- {len(explanation.decisions)} decisions: "
        + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(explanation.kind_counts().items())
        ),
        "",
        "## Decisions",
        "",
        "| # | step | op | tensor | strategy | ΔM (MB) | ΔT (ms) "
        "| peak before → after |",
        "|---|------|----|--------|----------|---------|---------"
        "|---------------------|",
    ]
    for decision in explanation.decisions:
        lines.append(_decision_row(decision))
    expensive = explanation.top_decisions(top)
    if expensive:
        lines += ["", f"## Top {len(expensive)} most expensive decisions", ""]
        for decision in expensive:
            lines.append(
                f"- **#{decision.index}** [{decision.kind}] "
                f"{decision.tensor}: {decision.strategy} at op "
                f"{decision.op!r} (step {decision.step}) — "
                f"ΔT {decision.delta_t * 1e3:.3f} ms, "
                f"ΔM {decision.delta_m / 2**20:.1f} MB, "
                f"ratio {decision.ratio:.3e}; "
                f"{decision.rejected_count} alternatives rejected"
            )
            for alt in decision.alternatives:
                lines.append(
                    f"  - rejected [{alt.kind}] {alt.tensor}: "
                    f"{alt.strategy} (ratio {alt.ratio:.3e}) — "
                    f"{alt.reason}"
                )
    if plan is not None and graph is not None:
        strategies = _strategy_bytes(plan, graph)
        lines += ["", "## Bytes per strategy", ""]
        for name, nbytes in sorted(strategies["bytes"].items()):
            if nbytes:
                lines.append(f"- {name}: {format_bytes(nbytes)}")
        lines.append(
            f"- split tensors: {strategies['split_tensors']}"
        )
    if trace is not None:
        runtime = stall_attribution(trace)
        lines += [
            "",
            "## Runtime stall attribution",
            "",
            f"- iteration {format_time(runtime['iteration_time'])}",
            f"- memory stall {format_time(runtime['memory_stall'])} "
            f"({runtime['stall_fraction']:.1%} of iteration)",
            f"- transfers: d2h {format_time(runtime['d2h_busy'])}, "
            f"h2d {format_time(runtime['h2d_busy'])} "
            f"(pcie {runtime['pcie_utilization']:.1%})",
            f"- recompute {format_time(runtime['recompute_time'])} "
            f"({runtime['recompute_fraction']:.1%} of iteration)",
        ]
        recovery = fault_recovery(trace)
        if recovery["recovery_actions"] or recovery["plan_swaps"]:
            lines += [
                "",
                "## Fault recovery",
                "",
                f"- {recovery['transfer_retries']} transfer retries "
                f"(backoff {format_time(recovery['retry_backoff_time'])})",
                f"- {recovery['emergency_evictions']} emergency evictions "
                f"({format_bytes(recovery['emergency_evicted_bytes'])}), "
                f"{recovery['emergency_refetches']} refetches "
                f"({format_bytes(recovery['emergency_refetched_bytes'])})",
                f"- {recovery['recovered_skips']} recovered skips, "
                f"{recovery['plan_swaps']} plan swaps",
            ]
    if memscope is not None:
        # The memscope report carries its own "# " heading; demote it so
        # the combined document keeps a single top-level title.
        section = memscope.to_markdown(top=top)
        section = section.replace("\n## ", "\n### ")
        lines += ["", section.replace("# Memscope:", "## Memscope:", 1)]
    return "\n".join(lines)


def comparison_table(
    rows: dict[str, ExecutionTrace | None],
) -> str:
    """One-line-per-policy comparison of executed traces."""
    header = (
        f"{'policy':>18s} {'iter_ms':>10s} {'samples/s':>10s} "
        f"{'peak':>10s} {'pcie':>7s} {'recompute_ms':>13s}"
    )
    lines = [header, "-" * len(header)]
    for name, trace in rows.items():
        if trace is None:
            lines.append(f"{name:>18s} {'infeasible':>10s}")
            continue
        lines.append(
            f"{name:>18s} {trace.iteration_time * 1e3:10.1f} "
            f"{trace.throughput:10.1f} "
            f"{format_bytes(trace.peak_memory):>10s} "
            f"{trace.pcie_utilization:7.1%} "
            f"{trace.recompute_time * 1e3:13.1f}"
        )
    return "\n".join(lines)
