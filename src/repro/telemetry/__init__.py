"""Unified telemetry: metrics, pipeline spans, planner provenance.

One observability spine for the whole stack, with three legs:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  timers, histograms with JSON/JSONL export (compile-cache hit rates,
  key-derivation timings, stage counts);
* :class:`~repro.telemetry.spans.SpanTracer` — wall-clock spans over the
  Profile → Plan → Lower → Execute pipeline, exported as Chrome
  trace-events and merged with the engine's simulated-time trace via
  :func:`~repro.telemetry.chrome.merge_traces`;
* planner **decision provenance** — a
  :class:`~repro.telemetry.provenance.PlanExplanation` recording why
  every split/swap/recompute decision was taken, attached to the
  produced plan.

Telemetry is *observation only*: plans, traces and every other artifact
are byte-identical with telemetry enabled or disabled. The default
state is disabled, where every hook degrades to a cheap no-op.

Usage::

    from repro import telemetry

    with telemetry.session() as tel:
        run = compile_run(graph, "tsplit", gpu)
        print(run.plan.plan.explanation.top_decisions(5))
        tel.metrics.write_jsonl("metrics.jsonl")
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.chrome import merge_traces, write_trace
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.provenance import (
    PlanDecision,
    PlanExplanation,
    PlanRecorder,
    RejectedAlternative,
)
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanDecision",
    "PlanExplanation",
    "PlanRecorder",
    "RejectedAlternative",
    "Span",
    "SpanTracer",
    "Telemetry",
    "Timer",
    "disable",
    "enable",
    "get_telemetry",
    "merge_traces",
    "session",
    "write_trace",
]


class Telemetry:
    """One telemetry session: a metrics registry, a tracer, and the
    provenance switch. Instrumented code reads the active session via
    :func:`get_telemetry`."""

    def __init__(
        self,
        *,
        metrics: bool = False,
        spans: bool = False,
        provenance: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=metrics)
        self.tracer = SpanTracer(enabled=spans)
        self.provenance = provenance

    @property
    def enabled(self) -> bool:
        return (
            self.metrics.enabled or self.tracer.enabled or self.provenance
        )


#: The permanently-disabled session active by default. Never mutated,
#: so `disable()` can restore it without allocating.
_DISABLED = Telemetry()
_active = _DISABLED


def get_telemetry() -> Telemetry:
    """The active telemetry session (disabled no-op by default)."""
    return _active


def enable(
    *, metrics: bool = True, spans: bool = True, provenance: bool = True,
) -> Telemetry:
    """Install (and return) a fresh enabled session."""
    global _active
    _active = Telemetry(metrics=metrics, spans=spans, provenance=provenance)
    return _active


def disable() -> None:
    """Restore the disabled default session."""
    global _active
    _active = _DISABLED


@contextmanager
def session(
    *, metrics: bool = True, spans: bool = True, provenance: bool = True,
):
    """Scoped telemetry session; restores the previous one on exit."""
    global _active
    previous = _active
    _active = Telemetry(metrics=metrics, spans=spans, provenance=provenance)
    try:
        yield _active
    finally:
        _active = previous
