"""Merging Chrome trace-event streams into one Perfetto-loadable file.

The engine's :class:`~repro.runtime.observers.ChromeTraceObserver`
emits simulated-time events; :class:`~repro.telemetry.spans.SpanTracer`
emits wall-clock pipeline spans. Both clocks start at zero, so merging
them into one file gives a shared-timeline view of compile + runtime.
:func:`merge_traces` remaps process ids so sources never collide, even
when each source numbered its own pids from zero.
"""

from __future__ import annotations

import json


def _events_of(source) -> list[dict]:
    """Extract trace events from any supported source shape."""
    if hasattr(source, "to_chrome_events"):      # SpanTracer
        return source.to_chrome_events()
    if hasattr(source, "events"):                # ChromeTraceObserver
        return source.events
    if isinstance(source, dict):                 # parsed trace JSON
        return source.get("traceEvents", [])
    if isinstance(source, list):                 # raw event list
        return source
    raise TypeError(
        f"cannot extract trace events from {type(source).__name__}"
    )


def merge_traces(*sources, names: list[str] | None = None) -> dict:
    """Merge trace-event sources into one Chrome-trace payload.

    Every distinct ``(source, pid)`` pair is renumbered to a fresh pid,
    so two observers that both used pid 0 end up on separate process
    tracks. ``names`` optionally overrides each source's process
    name(s); a source with no ``process_name`` metadata gets one, and
    any ``(pid, tid)`` track that carries events but no ``thread_name``
    metadata gets a readable fallback — Perfetto otherwise shows bare
    numeric track ids.
    """
    merged: list[dict] = []
    next_pid = 0
    for index, source in enumerate(sources):
        events = _events_of(source)
        pid_map: dict[int, int] = {}
        named: set[int] = set()
        thread_named: set[tuple[int, int]] = set()
        threads_seen: set[tuple[int, int]] = set()
        override = names[index] if names and index < len(names) else None
        for event in events:
            old_pid = event.get("pid", 0)
            new_pid = pid_map.get(old_pid)
            if new_pid is None:
                new_pid = next_pid
                pid_map[old_pid] = new_pid
                next_pid += 1
            event = dict(event)
            event["pid"] = new_pid
            if event.get("ph") == "M" and event.get("name") == "process_name":
                named.add(new_pid)
                if override is not None:
                    event["args"] = {"name": override}
            elif event.get("ph") == "M" and event.get("name") == "thread_name":
                thread_named.add((new_pid, event.get("tid", 0)))
            elif "tid" in event:
                threads_seen.add((new_pid, event["tid"]))
            merged.append(event)
        for pid in sorted(set(pid_map.values()) - named):
            merged.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": override or f"source {index}"},
            })
        for pid, tid in sorted(threads_seen - thread_named):
            merged.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "args": {"name": f"thread {tid}"},
            })
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def counter_track_events(
    name: str,
    points: list[tuple[float, dict]] | list[tuple[float, int]],
    *,
    pid: int = 0,
    process_name: str | None = None,
) -> list[dict]:
    """Build a Chrome counter ("C") track from ``(time, value)`` points.

    ``points`` holds ``(seconds, value)`` pairs where ``value`` is either
    a number (emitted under the series key ``"value"``) or a dict of
    series-name -> number, letting one track stack several series (as
    Perfetto renders multi-series counters). Includes a ``process_name``
    metadata event when requested so the track is labelled without the
    caller having to remember the "M"-event incantation.
    """
    events: list[dict] = []
    if process_name is not None:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": process_name},
        })
    for time, value in points:
        args = value if isinstance(value, dict) else {"value": value}
        events.append({
            "ph": "C", "name": name, "pid": pid,
            "ts": time * 1e6, "args": args,
        })
    return events


def write_trace(path, payload: dict) -> None:
    """Write a merged trace payload as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
