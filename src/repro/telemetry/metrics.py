"""Lightweight metrics registry: counters, gauges, timers, histograms.

Instrumentation sites ask the registry for a metric by name and poke it
(`inc`, `set`, `observe`, `time`). A *disabled* registry hands back
shared null sinks whose methods are empty — the cost of a hook on a
disabled registry is one dict-free method call, so hot paths (the
planner loop, the compile cache) can stay instrumented unconditionally.

Snapshots export as plain dicts, JSON, or JSONL (one metric per line —
the format CI uploads as a workflow artifact).

Metrics are process-global and may be poked from many threads at once
(the serve daemon's request handlers all share one registry), so metric
creation and every mutation are lock-protected. The disabled path stays
lock-free: a disabled registry hands back the shared null sinks, which
touch nothing.
"""

from __future__ import annotations

import json
import threading
import time


class _NullMetric:
    """Shared no-op sink returned by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullTimerContext":
        return _NULL_TIMER_CONTEXT


class _NullTimerContext:
    """Reusable no-op context manager for ``_NullMetric.time()``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_METRIC = _NullMetric()
_NULL_TIMER_CONTEXT = _NullTimerContext()


class Counter:
    """Monotonically increasing count; increments are thread-safe."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-write-wins point-in-time value."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming summary of observed values (count/total/min/max/mean).

    Observations are thread-safe: the count/total/min/max quadruple is
    updated atomically, so a snapshot taken between observations is
    always internally consistent (no torn count-without-total states).
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one value into the running summary."""
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }


class Timer(Histogram):
    """Histogram of wall-clock durations, fed by a context manager."""

    kind = "timer"
    __slots__ = ()

    def time(self) -> "_TimerContext":
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named metrics, created on first use.

    A registry constructed with ``enabled=False`` returns
    :data:`NULL_METRIC` from every accessor and records nothing; its
    :meth:`snapshot` is always empty.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        if not self.enabled:
            return NULL_METRIC
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """name -> {"kind": ..., **metric fields}, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {
            name: {"kind": metric.kind, **metric.snapshot()}
            for name, metric in metrics
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_jsonl(self) -> str:
        """One ``{"name": ..., "kind": ..., ...}`` object per line."""
        lines = [
            json.dumps({"name": name, **fields})
            for name, fields in self.snapshot().items()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
