"""Planner decision provenance: *why* each sTensor got its strategy.

The greedy planner (Algorithm 2) applies one candidate per iteration.
With provenance enabled it additionally records, per decision, the
accepted candidate (tensor, strategy, split rule, scored ΔM/ΔT), the
memory-curve peak before and after applying it, and the top rejected
alternatives with their rejection reasons. The result is a
:class:`PlanExplanation` attached to the produced
:class:`~repro.core.plan.Plan` — pure observation, never a decision
input: plans are byte-identical with provenance on or off (tested in
``tests/test_telemetry.py``).

The recorder is deliberately decoupled from planner types: it reads
``Candidate`` attributes (``configs``, ``delta_m``, ``delta_t``,
``ratio``, ``kind``) and graph tensors duck-typed, so this module
imports nothing from ``repro.core``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class RejectedAlternative:
    """A candidate considered at one decision but not applied."""

    tensor_id: int
    tensor: str
    strategy: str
    kind: str
    delta_m: float
    delta_t: float
    ratio: float
    reason: str


@dataclass(frozen=True)
class PlanDecision:
    """One accepted planner decision and its local context."""

    index: int
    #: Schedule position of the memory bottleneck this decision attacked.
    step: int
    #: Name of the op executing at that position.
    op: str
    #: Primary tensor (first group member).
    tensor_id: int
    tensor: str
    #: Human-readable strategy of the primary member, e.g.
    #: ``"swap+split(p=4, dim=sample)"``.
    strategy: str
    #: Coarse classification: swap / recompute / split / split-swap /
    #: split-recompute.
    kind: str
    #: Split rule of the primary member (``None`` when unsplit).
    split_dim: str | None
    p_num: int
    #: Every (tensor id, tensor name, config description) the decision
    #: applied atomically (group splits configure several tensors).
    configs: tuple[tuple[int, str, str], ...]
    delta_m: float
    delta_t: float
    ratio: float
    #: Memory-curve peak immediately before / after applying.
    peak_before: int
    peak_after: int
    #: Top rejected candidates of the same decision, best-first.
    alternatives: tuple[RejectedAlternative, ...] = ()
    #: Total number of candidates scored and not chosen (alternatives
    #: holds only the best few).
    rejected_count: int = 0

    @property
    def peak_delta(self) -> int:
        """Peak-memory effect of this decision (negative = reduction)."""
        return self.peak_after - self.peak_before


@dataclass
class PlanExplanation:
    """Structured provenance of one planning run."""

    policy: str
    graph: str
    capacity: int
    budget: float
    baseline_peak: int
    final_peak: int = 0
    baseline_time: float = 0.0
    estimated_time: float = 0.0
    decisions: list[PlanDecision] = field(default_factory=list)

    def top_decisions(self, k: int = 10) -> list[PlanDecision]:
        """The ``k`` most expensive decisions by extra iteration time."""
        return sorted(
            self.decisions, key=lambda d: d.delta_t, reverse=True,
        )[:k]

    def kind_counts(self) -> dict[str, int]:
        """Decision count per strategy kind."""
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.kind] = counts.get(decision.kind, 0) + 1
        return counts

    def total_delta_t(self) -> float:
        return sum(d.delta_t for d in self.decisions)

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class PlanRecorder:
    """Collects decision provenance during one planning run.

    Constructed by the planner only when provenance is enabled; all
    methods are pure observation. ``max_alternatives`` bounds how many
    rejected candidates are kept per decision (the full pool can run to
    thousands).
    """

    def __init__(
        self,
        graph,
        schedule: list[int],
        *,
        policy: str,
        capacity: int,
        budget: float,
        max_alternatives: int = 5,
    ) -> None:
        self._graph = graph
        self._schedule = schedule
        self._max_alternatives = max_alternatives
        self.explanation = PlanExplanation(
            policy=policy,
            graph=graph.name,
            capacity=capacity,
            budget=budget,
            baseline_peak=0,
        )

    def _tensor_name(self, tensor_id: int) -> str:
        tensor = self._graph.tensors.get(tensor_id)
        return tensor.name if tensor is not None else f"t{tensor_id}"

    def begin(self, baseline_peak: int, baseline_time: float) -> None:
        """Record the unplanned baseline before the first decision."""
        self.explanation.baseline_peak = baseline_peak
        self.explanation.baseline_time = baseline_time

    def record(
        self,
        candidate,
        *,
        step: int,
        rejected: list[tuple[object, str]],
        peak_before: int,
        peak_after: int,
    ) -> None:
        """Record one accepted decision.

        ``rejected`` pairs every other scored candidate with its
        rejection reason; only the ``max_alternatives`` best (smallest
        ΔT/ΔM) are kept.
        """
        rejected_sorted = sorted(rejected, key=lambda pair: pair[0].ratio)
        alternatives = tuple(
            RejectedAlternative(
                tensor_id=alt.tensor_id,
                tensor=self._tensor_name(alt.tensor_id),
                strategy=alt.config.describe(),
                kind=alt.kind,
                delta_m=alt.delta_m,
                delta_t=alt.delta_t,
                ratio=alt.ratio,
                reason=reason,
            )
            for alt, reason in rejected_sorted[: self._max_alternatives]
        )
        op = self._graph.ops[self._schedule[step]]
        primary_cfg = candidate.config
        self.explanation.decisions.append(PlanDecision(
            index=len(self.explanation.decisions),
            step=step,
            op=op.name,
            tensor_id=candidate.tensor_id,
            tensor=self._tensor_name(candidate.tensor_id),
            strategy=primary_cfg.describe(),
            kind=candidate.kind,
            split_dim=primary_cfg.dim if primary_cfg.is_split else None,
            p_num=primary_cfg.p_num,
            configs=tuple(
                (tid, self._tensor_name(tid), cfg.describe())
                for tid, cfg in candidate.configs
            ),
            delta_m=candidate.delta_m,
            delta_t=candidate.delta_t,
            ratio=candidate.ratio,
            peak_before=peak_before,
            peak_after=peak_after,
            alternatives=alternatives,
            rejected_count=len(rejected),
        ))

    def finish(
        self, final_peak: int, estimated_time: float,
    ) -> PlanExplanation:
        """Seal and return the explanation after the last decision."""
        self.explanation.final_peak = final_peak
        self.explanation.estimated_time = estimated_time
        return self.explanation
