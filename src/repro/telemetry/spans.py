"""Span-based tracing for the compilation pipeline.

A :class:`SpanTracer` measures nested wall-clock regions (Profile →
Plan → Lower → Execute, cache key derivation, report rendering) on a
monotonic clock whose zero is the tracer's creation. Spans export as
Chrome trace-event slices, so :func:`repro.telemetry.chrome.merge_traces`
can put compile-time spans and the engine's simulated-time events into
one Perfetto view.

One tracer may be shared by concurrent requests (the serve daemon runs
many ``compile_run`` calls against one telemetry session): the *nesting
state* lives in a :mod:`contextvars` context variable, so each thread —
and each asyncio task, should one ever host a pipeline — sees only its
own span stack, while the completed-span list is appended under a lock.
Every span records the logical track (``tid``) it was opened on, so two
interleaved requests export as two properly-nested flames instead of
one malformed interleaving.

A disabled tracer returns a shared no-op context manager from
:meth:`SpanTracer.span` — no allocation, no clock read.
"""

from __future__ import annotations

import contextvars
import threading
import time
from dataclasses import dataclass, field

#: Per-context span nesting depth. One variable serves every tracer:
#: a context runs its spans against one active tracer at a time, and
#: depth always returns to its entry value when a span closes.
_DEPTH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_span_depth", default=0,
)


@dataclass(frozen=True)
class Span:
    """One completed region: half-open ``[start, end)`` in tracer time."""

    name: str
    cat: str
    start: float
    end: float
    #: Nesting depth at entry (0 = top level). Parent spans close after
    #: their children, so depth reconstructs the hierarchy.
    depth: int
    args: dict = field(default_factory=dict)
    #: Logical track: 0 for the first recording thread, a fresh small
    #: integer for every other thread that records through this tracer.
    #: Spans nest only within their own track.
    tid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_depth",
                 "_token")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> None:
        self._start = self._tracer._now()
        self._depth = _DEPTH.get()
        self._token = _DEPTH.set(self._depth + 1)
        return None

    def __exit__(self, *exc) -> bool:
        _DEPTH.reset(self._token)
        self._tracer._record(Span(
            self._name, self._cat, self._start, self._tracer._now(),
            self._depth, self._args, self._tracer._track_id(),
        ))
        return False


class SpanTracer:
    """Collects nested spans on a monotonic clock starting at zero.

    Safe to share across threads: nesting depth is context-local (each
    request sees its own stack), recorded spans carry their track id,
    and the span list is appended under a lock.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        #: thread ident -> small stable track id, first-come ordering.
        self._tracks: dict[int, int] = {}
        self._epoch = time.perf_counter() if enabled else 0.0

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _track_id(self) -> int:
        """The recording thread's stable track id (0 = first thread)."""
        ident = threading.get_ident()
        with self._lock:
            track = self._tracks.get(ident)
            if track is None:
                track = len(self._tracks)
                self._tracks[ident] = track
            return track

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def span(self, name: str, cat: str = "pipeline", **args):
        """Context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, cat, args)

    def to_chrome_events(
        self, pid: int = 0, process_name: str = "compiler pipeline",
    ) -> list[dict]:
        """Spans as Chrome trace-event dicts (timestamps in µs).

        Properly nested complete ("X") events per thread render as
        nested flames in Perfetto; process/thread metadata names every
        track one of the recording threads used.
        """
        with self._lock:
            spans = list(self.spans)
        tids = sorted({span.tid for span in spans}) or [0]
        events: list[dict] = [
            {
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": process_name},
            },
        ]
        for tid in tids:
            name = "pipeline" if tid == 0 else f"pipeline-{tid}"
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        for span in sorted(spans, key=lambda s: (s.tid, s.start, s.depth)):
            events.append({
                "ph": "X", "name": span.name, "cat": span.cat,
                "pid": pid, "tid": span.tid,
                "ts": span.start * 1e6, "dur": span.duration * 1e6,
                "args": dict(span.args),
            })
        return events
