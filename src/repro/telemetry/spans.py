"""Span-based tracing for the compilation pipeline.

A :class:`SpanTracer` measures nested wall-clock regions (Profile →
Plan → Lower → Execute, cache key derivation, report rendering) on a
monotonic clock whose zero is the tracer's creation. Spans export as
Chrome trace-event slices, so :func:`repro.telemetry.chrome.merge_traces`
can put compile-time spans and the engine's simulated-time events into
one Perfetto view.

A disabled tracer returns a shared no-op context manager from
:meth:`SpanTracer.span` — no allocation, no clock read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One completed region: half-open ``[start, end)`` in tracer time."""

    name: str
    cat: str
    start: float
    end: float
    #: Nesting depth at entry (0 = top level). Parent spans close after
    #: their children, so depth reconstructs the hierarchy.
    depth: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> None:
        tracer = self._tracer
        self._start = tracer._now()
        tracer._depth += 1
        return None

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        tracer._depth -= 1
        tracer.spans.append(Span(
            self._name, self._cat, self._start, tracer._now(),
            tracer._depth, self._args,
        ))
        return False


class SpanTracer:
    """Collects nested spans on a monotonic clock starting at zero.

    Thread-unsafe by design: one tracer belongs to one compilation
    session (sweep workers should each own a tracer, or share none).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self._depth = 0
        self._epoch = time.perf_counter() if enabled else 0.0

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, cat: str = "pipeline", **args):
        """Context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name, cat, args)

    def to_chrome_events(
        self, pid: int = 0, process_name: str = "compiler pipeline",
    ) -> list[dict]:
        """Spans as Chrome trace-event dicts (timestamps in µs).

        Properly nested complete ("X") events on one thread render as a
        nested flame in Perfetto; process/thread metadata names the
        track.
        """
        events: list[dict] = [
            {
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": process_name},
            },
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
                "args": {"name": "pipeline"},
            },
        ]
        for span in sorted(self.spans, key=lambda s: (s.start, s.depth)):
            events.append({
                "ph": "X", "name": span.name, "cat": span.cat,
                "pid": pid, "tid": 0,
                "ts": span.start * 1e6, "dur": span.duration * 1e6,
                "args": dict(span.args),
            })
        return events
