"""Model registry: name -> builder, for benchmarks and CLI-style drivers.

Every builder shares the signature
``build(batch, *, param_scale=1.0, **overrides) -> Graph``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graph.graph import Graph
from repro.models.bert import build_bert_large
from repro.models.densenet import build_densenet121
from repro.models.gpt import build_gpt
from repro.models.inception import build_inception_v4
from repro.models.resnet import build_resnet50, build_resnet101, build_resnet152
from repro.models.transformer import build_transformer
from repro.models.vgg import build_vgg16, build_vgg19


def _bert_adapter(
    batch: int, *, param_scale: float = 1.0, **overrides,
) -> Graph:
    """Adapt BERT's ``hidden`` knob to the common ``param_scale`` interface."""
    from repro.models.bert import BERT_HEAD_DIM, BERT_LARGE_HIDDEN

    hidden = overrides.pop("hidden", None)
    if hidden is None:
        hidden = round(BERT_LARGE_HIDDEN * param_scale / BERT_HEAD_DIM)
        hidden = max(1, hidden) * BERT_HEAD_DIM
    return build_bert_large(batch, hidden=hidden, **overrides)


#: The six evaluation models of the paper (Table IV ordering) plus BERT.
MODEL_REGISTRY: dict[str, Callable[..., Graph]] = {
    "vgg16": build_vgg16,
    "vgg19": build_vgg19,
    "resnet50": build_resnet50,
    "resnet101": build_resnet101,
    "resnet152": build_resnet152,
    "inception_v4": build_inception_v4,
    "transformer": build_transformer,
    "bert_large": _bert_adapter,
    "gpt": build_gpt,
    "densenet121": build_densenet121,
}


def model_names() -> list[str]:
    """Registered model names, in the paper's table order."""
    return list(MODEL_REGISTRY)


def build_model(
    name: str, batch: int, *, param_scale: float = 1.0, **overrides,
) -> Graph:
    """Build a registered model's training graph.

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {model_names()}"
        ) from None
    return builder(batch, param_scale=param_scale, **overrides)
