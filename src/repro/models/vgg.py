"""VGG-16 / VGG-19 (Simonyan & Zisserman) at ImageNet shapes.

Classic conv+ReLU stacks with max-pooling; the paper uses VGG as the
canonical "huge early feature maps" workload (Figure 2a). ``param_scale``
multiplies every convolution's channel count, reproducing the parameter-
dimension scaling of Table V.
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.models.layers import ModelBuilder

_VGG16_BLOCKS = [[64, 64], [128, 128], [256, 256, 256],
                 [512, 512, 512], [512, 512, 512]]
_VGG19_BLOCKS = [[64, 64], [128, 128], [256, 256, 256, 256],
                 [512, 512, 512, 512], [512, 512, 512, 512]]


def _build_vgg(
    name: str,
    blocks: list[list[int]],
    batch: int,
    param_scale: float,
    image_size: int,
    num_classes: int,
    optimizer: str,
    precision: str,
) -> Graph:
    builder = ModelBuilder(
        f"{name}[b={batch},k={param_scale:g}]", batch, precision=precision,
    )
    x = builder.input_image(3, image_size, image_size)
    for block_idx, channels_list in enumerate(blocks, start=1):
        for conv_idx, channels in enumerate(channels_list, start=1):
            scaled = max(1, round(channels * param_scale))
            x = builder.conv2d(
                x, scaled, kernel=3, name=f"conv{block_idx}_{conv_idx}",
            )
            x = builder.relu(x, name=f"relu{block_idx}_{conv_idx}")
        x = builder.maxpool(x, kernel=2, name=f"pool{block_idx}")
    x = builder.flatten(x)
    x = builder.linear(x, 4096, name="fc6")
    x = builder.relu(x, name="relu6")
    x = builder.dropout(x, name="drop6")
    x = builder.linear(x, 4096, name="fc7")
    x = builder.relu(x, name="relu7")
    x = builder.dropout(x, name="drop7")
    logits = builder.linear(x, num_classes, name="fc8")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)


def build_vgg16(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """VGG-16 training graph at the given sample/parameter scale."""
    return _build_vgg(
        "vgg16", _VGG16_BLOCKS, batch, param_scale, image_size,
        num_classes, optimizer, precision,
    )


def build_vgg19(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """VGG-19 training graph at the given sample/parameter scale."""
    return _build_vgg(
        "vgg19", _VGG19_BLOCKS, batch, param_scale, image_size,
        num_classes, optimizer, precision,
    )
