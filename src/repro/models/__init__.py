"""Model zoo: the six DNN workloads of the paper's evaluation.

Every builder returns a full training-iteration :class:`repro.graph.Graph`
(forward + backward + update) with realistic tensor shapes, parameterised
by *sample scale* (batch size) and *parameter scale* (channel / hidden
multiplier), matching Section VI-A: VGG-16/19, ResNet-50/101, Inception-V4
(ImageNet shapes) and Transformer (IWSLT2016 shapes), plus BERT-Large for
Figure 1 / Table II.
"""

from repro.models.layers import ModelBuilder
from repro.models.vgg import build_vgg16, build_vgg19
from repro.models.resnet import build_resnet50, build_resnet101
from repro.models.inception import build_inception_v4
from repro.models.transformer import build_transformer
from repro.models.bert import build_bert_large
from repro.models.densenet import build_densenet121
from repro.models.gpt import build_gpt
from repro.models.registry import MODEL_REGISTRY, build_model, model_names

__all__ = [
    "ModelBuilder",
    "build_vgg16",
    "build_vgg19",
    "build_resnet50",
    "build_resnet101",
    "build_inception_v4",
    "build_transformer",
    "build_bert_large",
    "build_gpt",
    "build_densenet121",
    "MODEL_REGISTRY",
    "build_model",
    "model_names",
]
