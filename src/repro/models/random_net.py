"""Random-but-valid model generator, for fuzzing the whole pipeline.

Generates seeded random CNNs (chains with occasional residual fan-out
and pooling) whose training graphs exercise the planner, augmenter and
engine on shapes nobody hand-picked. Used by the property-based
integration tests; also handy for stress experiments.
"""

from __future__ import annotations

import random

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.models.layers import ModelBuilder


def build_random_cnn(
    seed: int,
    *,
    batch: int | None = None,
    max_blocks: int = 6,
    optimizer: str = "sgd_momentum",
) -> Graph:
    """A seeded random CNN training graph.

    Structure: input -> [conv (+ optional bn) + activation, optional
    residual add, occasional pooling] x N -> head. All shape choices are
    drawn from ranges that keep graphs small and always valid.
    """
    rng = random.Random(seed)
    batch = batch or rng.choice([2, 4, 8, 16])
    image = rng.choice([8, 16, 32])
    builder = ModelBuilder(f"random_cnn[seed={seed}]", batch)
    x = builder.input_image(rng.choice([1, 3]), image, image)

    blocks = rng.randint(1, max_blocks)
    for index in range(blocks):
        channels = rng.choice([4, 8, 12, 16])
        kernel = rng.choice([1, 3])
        y = builder.conv2d(
            x, channels, kernel,
            padding=kernel // 2,
            name=f"conv{index}",
        )
        if rng.random() < 0.4:
            y = builder.batchnorm(y, name=f"bn{index}")
        y = (
            builder.relu(y, name=f"act{index}")
            if rng.random() < 0.7
            else builder.gelu(y, name=f"act{index}")
        )
        if y.shape == x.shape and rng.random() < 0.35:
            y = builder.add(x, y, name=f"res{index}")
        x = y
        if x.shape[2] >= 4 and rng.random() < 0.35:
            x = builder.maxpool(x, 2, name=f"pool{index}")

    flat = builder.flatten(x)
    if rng.random() < 0.5:
        flat = builder.linear(flat, rng.choice([16, 32]), name="hidden")
        flat = builder.relu(flat, name="hidden_act")
    logits = builder.linear(flat, rng.choice([2, 10]), name="logits")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)
