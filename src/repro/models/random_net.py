"""Random-but-valid model generator, for fuzzing the whole pipeline.

Generates seeded random CNNs whose training graphs exercise the
planner, augmenter and engine on shapes nobody hand-picked. Beyond the
plain chain, the generator rolls per-block topology:

* **chain** — conv (+ optional bn) + activation, optional residual add;
* **diamond** — two parallel branches off one tensor, re-merged by an
  elementwise add (the fan-out/fan-in pattern that stresses liveness:
  the fork tensor stays live across both branches);
* **branchy** — 2-3 parallel conv branches of *different* widths merged
  by a channel concat (Inception-style, exercising the merge path of
  split tensors).

Degenerate shapes are drawn on purpose: batch 1, single-channel inputs,
4x4 images pooled down to 1x1, 1x1 convolutions, and 1-feature linear
bottlenecks — the 4-byte edges that expose off-by-one bugs in split
planning and memory accounting. Zero-*byte* edges cannot exist at the
graph level (:class:`~repro.graph.tensor.TensorSpec` rejects empty
shapes); they enter lowered programs through the offload policies'
zero-byte "parameter updated" marker refs, so property tests that want
them run these graphs under ``zero_offload``/``fairscale_offload``.

Used by the property-based integration tests; also handy for stress
experiments.
"""

from __future__ import annotations

import random

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.models.layers import ModelBuilder


def build_random_cnn(
    seed: int,
    *,
    batch: int | None = None,
    max_blocks: int = 6,
    optimizer: str = "sgd_momentum",
) -> Graph:
    """A seeded random CNN training graph.

    Structure: input -> [chain | diamond | branchy block, occasional
    pooling] x N -> head. All shape choices are drawn from ranges that
    keep graphs small and always valid; degenerate shapes (batch 1,
    1-channel tensors, 1x1 spatial dims) are included deliberately.
    """
    rng = random.Random(seed)
    batch = batch or rng.choice([1, 2, 4, 8, 16])
    image = rng.choice([4, 8, 16, 32])
    builder = ModelBuilder(f"random_cnn[seed={seed}]", batch)
    x = builder.input_image(rng.choice([1, 3]), image, image)

    blocks = rng.randint(1, max_blocks)
    for index in range(blocks):
        roll = rng.random()
        if roll < 0.5:
            x = _chain_block(builder, rng, x, index)
        elif roll < 0.8:
            x = _diamond_block(builder, rng, x, index)
        else:
            x = _branchy_block(builder, rng, x, index)
        if x.shape[2] >= 2 and rng.random() < 0.35:
            # Pooling may legitimately reach 1x1 spatial dims.
            x = builder.maxpool(x, 2, name=f"pool{index}")

    flat = builder.flatten(x)
    if rng.random() < 0.5:
        # A 1-feature hidden layer is a deliberate 4*batch-byte edge.
        flat = builder.linear(flat, rng.choice([1, 16, 32]), name="hidden")
        flat = builder.relu(flat, name="hidden_act")
    logits = builder.linear(flat, rng.choice([2, 10]), name="logits")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)


def _conv_act(builder: ModelBuilder, rng: random.Random, x, channels: int,
              name: str):
    """conv (+ optional bn) + activation, padding-preserved spatial dims."""
    kernel = rng.choice([1, 1, 3]) if x.shape[2] < 3 else rng.choice([1, 3])
    y = builder.conv2d(
        x, channels, kernel, padding=kernel // 2, name=name,
    )
    if rng.random() < 0.4:
        y = builder.batchnorm(y, name=f"{name}_bn")
    return (
        builder.relu(y, name=f"{name}_act")
        if rng.random() < 0.7
        else builder.gelu(y, name=f"{name}_act")
    )


def _chain_block(builder: ModelBuilder, rng: random.Random, x, index: int):
    """The classic chain block with an optional residual add."""
    channels = rng.choice([1, 4, 8, 12, 16])
    y = _conv_act(builder, rng, x, channels, f"conv{index}")
    if y.shape == x.shape and rng.random() < 0.35:
        y = builder.add(x, y, name=f"res{index}")
    return y


def _diamond_block(builder: ModelBuilder, rng: random.Random, x, index: int):
    """Fork x into two same-shaped branches, re-merge with an add.

    The fork tensor stays live until both branches have consumed it —
    the diamond liveness pattern linear chains never produce.
    """
    channels = rng.choice([1, 4, 8, 16])
    left = _conv_act(builder, rng, x, channels, f"dia{index}_l")
    right = _conv_act(builder, rng, x, channels, f"dia{index}_r")
    if rng.random() < 0.5:
        right = _conv_act(builder, rng, right, channels, f"dia{index}_r2")
    return builder.add(left, right, name=f"dia{index}_merge")


def _branchy_block(builder: ModelBuilder, rng: random.Random, x, index: int):
    """2-3 parallel branches of different widths, channel-concatenated."""
    widths = rng.sample([1, 2, 4, 8, 12], k=rng.choice([2, 3]))
    branches = [
        _conv_act(builder, rng, x, width, f"br{index}_{b}")
        for b, width in enumerate(widths)
    ]
    return builder.concat(branches, axis=1, name=f"br{index}_cat")
