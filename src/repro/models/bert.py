"""BERT-Large (Devlin et al.): 24-layer Transformer encoder.

Used by Figure 1 (memory requirement vs model scale) and Table II (tensor
size distribution). ``hidden`` is the *parameter scale* axis of Figure 1
(768 ... 2560) and ``batch`` the sample axis (4 ... 64).
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.ops import OpType
from repro.models.layers import ModelBuilder
from repro.models.transformer import _encoder_layer

BERT_LARGE_LAYERS = 24
BERT_LARGE_HIDDEN = 1024
BERT_HEAD_DIM = 64
BERT_VOCAB = 30_522


def build_bert_large(
    batch: int = 32,
    *,
    hidden: int = BERT_LARGE_HIDDEN,
    layers: int = BERT_LARGE_LAYERS,
    seq_len: int = 128,
    vocab: int = BERT_VOCAB,
    num_classes: int = 2,
    optimizer: str = "adam",
    precision: str = "fp32",
) -> Graph:
    """BERT-Large fine-tuning graph (sequence classification head, MRPC-style).

    Heads scale with hidden size at a fixed 64-dim head (BERT convention),
    so increasing ``hidden`` grows both parameter and attention-score
    tensors — the Figure 1 parameter-scale axis.
    """
    if hidden % BERT_HEAD_DIM != 0:
        raise ValueError(
            f"hidden ({hidden}) must be a multiple of {BERT_HEAD_DIM}"
        )
    heads = hidden // BERT_HEAD_DIM
    builder = ModelBuilder(
        f"bert_large[b={batch},h={hidden}]", batch, precision=precision,
    )

    tokens = builder.input_tokens(seq_len)
    x = builder.embedding(tokens, vocab, hidden, name="embed")
    x = builder.layernorm(x, name="embed_ln")
    x = builder.dropout(x, name="embed_drop")
    for i in range(layers):
        x = _encoder_layer(builder, x, heads, 4 * hidden, name=f"layer{i + 1}")

    # [CLS] selection: (N, T, H) -> (N, H), a zero-cost view.
    cls = builder.graph.add_tensor(
        "cls", (batch, hidden), dtype=builder.activation_dtype,
        split_axes={"sample": 0, "parameter": 1},
    )
    builder.graph.add_op("cls_select", OpType.RESHAPE, inputs=[x], outputs=[cls])
    pooled = builder.linear(cls, hidden, name="pooler")
    logits = builder.linear(pooled, num_classes, name="classifier")
    # Classification loss over the pooled representation.
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)
