"""Transformer encoder-decoder (Vaswani et al.) at IWSLT2016 shapes.

This is the "no convolution layers" workload of Tables IV/V: vDNN-conv has
nothing to offload and SuperNeurons has no checkpoints, so both are marked
inapplicable in the paper, while TSPLIT splits the giant attention-score
tensors along sample or attribute dimensions.

``param_scale`` multiplies the hidden size (and proportionally the FFN
width), matching the paper's parameter-dimension scaling for Transformers.
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.ops import OpType
from repro.graph.graph import Graph
from repro.graph.tensor import TensorSpec
from repro.models.layers import ModelBuilder


def _encoder_layer(
    builder: ModelBuilder, x: TensorSpec, heads: int, ffn: int, name: str,
) -> TensorSpec:
    attn = builder.attention(x, heads, name=f"{name}/self_attn")
    x = builder.add(x, attn, name=f"{name}/res1")
    x = builder.layernorm(x, name=f"{name}/ln1")
    y = builder.linear(x, ffn, name=f"{name}/ffn1")
    y = builder.gelu(y, name=f"{name}/gelu")
    y = builder.linear(y, x.shape[-1], name=f"{name}/ffn2")
    x = builder.add(x, y, name=f"{name}/res2")
    return builder.layernorm(x, name=f"{name}/ln2")


def _decoder_layer(
    builder: ModelBuilder, x: TensorSpec, memory: TensorSpec,
    heads: int, ffn: int, name: str,
) -> TensorSpec:
    attn = builder.attention(x, heads, name=f"{name}/self_attn")
    x = builder.add(x, attn, name=f"{name}/res1")
    x = builder.layernorm(x, name=f"{name}/ln1")
    cross = builder.attention(x, heads, kv=memory, name=f"{name}/cross_attn")
    x = builder.add(x, cross, name=f"{name}/res2")
    x = builder.layernorm(x, name=f"{name}/ln2")
    y = builder.linear(x, ffn, name=f"{name}/ffn1")
    y = builder.gelu(y, name=f"{name}/gelu")
    y = builder.linear(y, x.shape[-1], name=f"{name}/ffn2")
    x = builder.add(x, y, name=f"{name}/res3")
    return builder.layernorm(x, name=f"{name}/ln3")


def build_transformer(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    layers: int = 6,
    hidden: int = 512,
    heads: int = 8,
    ffn_multiplier: int = 4,
    seq_len: int = 256,
    vocab: int = 32_000,
    optimizer: str = "adam",
    precision: str = "fp32",
) -> Graph:
    """Transformer (``layers`` encoder + ``layers`` decoder) training graph.

    Hidden size is scaled to a multiple of ``heads`` so the per-head
    dimension stays integral when ``param_scale`` is fractional.
    """
    scaled_hidden = max(heads, round(hidden * param_scale / heads) * heads)
    ffn = scaled_hidden * ffn_multiplier
    builder = ModelBuilder(
        f"transformer[b={batch},k={param_scale:g}]", batch,
        precision=precision,
    )

    src = builder.input_tokens(seq_len, name="src_tokens")
    tgt = builder.input_tokens(seq_len, name="tgt_tokens")

    x = builder.embedding(src, vocab, scaled_hidden, name="src_embed")
    x = builder.dropout(x, name="src_embed_drop")
    for i in range(layers):
        x = _encoder_layer(builder, x, heads, ffn, name=f"enc{i + 1}")
    memory = x

    y = builder.embedding(tgt, vocab, scaled_hidden, name="tgt_embed")
    y = builder.dropout(y, name="tgt_embed_drop")
    for i in range(layers):
        y = _decoder_layer(builder, y, memory, heads, ffn, name=f"dec{i + 1}")

    logits = builder.linear(y, vocab, name="generator")
    # Sequence-level cross entropy: labels are the shifted target tokens.
    loss = builder.graph.add_tensor(
        "loss", (batch,), dtype=builder.activation_dtype,
        split_axes={"sample": 0},
    )
    labels = builder.input_tokens(seq_len, name="gold_tokens")
    builder.graph.add_op(
        "loss_op",
        OpType.CROSS_ENTROPY,
        inputs=[logits, labels],
        outputs=[loss],
        flops=5.0 * logits.numel,
    )
    return build_training_graph(builder.graph, loss, optimizer=optimizer)

