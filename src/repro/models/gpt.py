"""GPT-style decoder-only causal language model.

Not part of the paper's benchmark table, but squarely in its motivation
("the basic module of the current state-of-the-art large NLP models
(e.g., BERT, GPT-3)"). Useful for exercising the planner on long-context
workloads where the (N, heads, T, T) score tensors dominate.
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.ops import OpType
from repro.models.layers import ModelBuilder
from repro.models.transformer import _encoder_layer

#: GPT-2 small configuration.
GPT2_LAYERS = 12
GPT2_HIDDEN = 768
GPT2_HEADS = 12
GPT2_VOCAB = 50_257


def build_gpt(
    batch: int = 8,
    *,
    param_scale: float = 1.0,
    layers: int = GPT2_LAYERS,
    hidden: int = GPT2_HIDDEN,
    heads: int = GPT2_HEADS,
    seq_len: int = 1024,
    vocab: int = GPT2_VOCAB,
    optimizer: str = "adam",
    precision: str = "fp32",
) -> Graph:
    """GPT-2-style causal LM training graph.

    The causal mask does not change tensor shapes or memory behaviour
    (masked scores are still materialised), so the decoder block reuses
    the encoder-layer builder; the distinguishing workload property is
    the long sequence length making (N, heads, T, T) tensors enormous.
    """
    scaled_hidden = max(heads, round(hidden * param_scale / heads) * heads)
    builder = ModelBuilder(
        f"gpt[b={batch},k={param_scale:g}]", batch, precision=precision,
    )
    tokens = builder.input_tokens(seq_len)
    x = builder.embedding(tokens, vocab, scaled_hidden, name="wte")
    x = builder.dropout(x, name="embed_drop")
    for i in range(layers):
        x = _encoder_layer(
            builder, x, heads, 4 * scaled_hidden, name=f"block{i + 1}",
        )
    x = builder.layernorm(x, name="ln_f")
    logits = builder.linear(x, vocab, name="lm_head")
    loss = builder.graph.add_tensor(
        "loss", (batch,), dtype=builder.activation_dtype,
        split_axes={"sample": 0},
    )
    labels = builder.input_tokens(seq_len, name="target_tokens")
    builder.graph.add_op(
        "loss_op",
        OpType.CROSS_ENTROPY,
        inputs=[logits, labels],
        outputs=[loss],
        flops=5.0 * logits.numel,
    )
    return build_training_graph(builder.graph, loss, optimizer=optimizer)
