"""Layer-level builder API over the raw dataflow graph.

:class:`ModelBuilder` offers the familiar layer vocabulary (conv2d, batch
norm, linear, attention, ...) and takes care of shape inference, FLOP
estimation, split-axis annotation and unique naming, so model definitions
in this package read like ordinary DNN code.

Shape conventions
-----------------
* CNN activations are NCHW; ``sample`` is axis 0, ``parameter`` (channels)
  axis 1, ``attribute`` (height) axis 2.
* Sequence activations are (N, T, H); ``sample`` axis 0, ``attribute``
  (time) axis 1, ``parameter`` (hidden) axis 2.
* Conv weights are (O, I, kh, kw) and linear weights (O, I); ``parameter``
  is axis 0.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.graph.graph import Graph
from repro.graph.ops import OpType, conv2d_flops, matmul_flops
from repro.graph.tensor import (
    DIM_ATTRIBUTE,
    DIM_PARAMETER,
    DIM_SAMPLE,
    TensorKind,
    TensorSpec,
)
from repro.units import DType

#: Fraction of (input + output) bytes a convolution kernel needs as
#: transient workspace (im2col / FFT scratch). Splitting an operator
#: shrinks its workspace proportionally — one of the split benefits the
#: paper calls out in Section III-A.
CONV_WORKSPACE_FRACTION = 0.25

_IMAGE_AXES = {DIM_SAMPLE: 0, DIM_PARAMETER: 1, DIM_ATTRIBUTE: 2}
_SEQ_AXES = {DIM_SAMPLE: 0, DIM_ATTRIBUTE: 1, DIM_PARAMETER: 2}
_FLAT_AXES = {DIM_SAMPLE: 0, DIM_PARAMETER: 1}
_WEIGHT_AXES = {DIM_PARAMETER: 0}


#: Precision name -> activation element type. Parameters and optimizer
#: state stay FP32 (master weights), matching mixed-precision practice.
PRECISIONS = {
    "fp32": DType.FLOAT32,
    "fp16": DType.FLOAT16,
}


class ModelBuilder:
    """Builds a forward graph one layer at a time.

    Parameters
    ----------
    name:
        Graph name.
    batch:
        Batch size; used for FLOP estimates and stored on the graph for
        throughput accounting (samples per iteration).
    precision:
        ``"fp32"`` (default) or ``"fp16"``: element type of activations
        (and hence their gradients). Parameters and optimizer state stay
        FP32 — the master-weight convention of mixed-precision training,
        which is exactly why parameter-offload baselines look better
        under fp16 while activation pressure halves.
    """

    def __init__(
        self, name: str, batch: int, *, precision: str = "fp32",
    ) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; "
                f"expected one of {sorted(PRECISIONS)}"
            )
        self.graph = Graph(name)
        self.batch = batch
        self.precision = precision
        self.activation_dtype = PRECISIONS[precision]
        self._name_counts: dict[str, int] = {}

    # -- naming ---------------------------------------------------------------

    def unique(self, prefix: str) -> str:
        """Return ``prefix``, ``prefix_2``, ``prefix_3``, ... as needed."""
        count = self._name_counts.get(prefix, 0) + 1
        self._name_counts[prefix] = count
        return prefix if count == 1 else f"{prefix}_{count}"

    # -- graph inputs ---------------------------------------------------------

    def input_image(
        self, channels: int, height: int, width: int, name: str = "input",
    ) -> TensorSpec:
        """Register the image batch input (NCHW)."""
        return self.graph.add_tensor(
            name,
            (self.batch, channels, height, width),
            kind=TensorKind.INPUT,
            split_axes=dict(_IMAGE_AXES),
        )

    def input_tokens(self, seq_len: int, name: str = "tokens") -> TensorSpec:
        """Register a token-id batch input (N, T)."""
        return self.graph.add_tensor(
            name,
            (self.batch, seq_len),
            dtype=DType.INT64,
            kind=TensorKind.INPUT,
            split_axes={DIM_SAMPLE: 0, DIM_ATTRIBUTE: 1},
        )

    def labels(self, name: str = "labels") -> TensorSpec:
        return self.graph.add_tensor(
            name,
            (self.batch,),
            dtype=DType.INT64,
            kind=TensorKind.INPUT,
            split_axes={DIM_SAMPLE: 0},
        )

    def _param(self, name: str, shape: tuple[int, ...]) -> TensorSpec:
        return self.graph.add_tensor(
            name, shape, kind=TensorKind.PARAM, split_axes=dict(_WEIGHT_AXES),
        )

    # -- CNN layers -----------------------------------------------------------

    def conv2d(
        self,
        x: TensorSpec,
        out_channels: int,
        kernel: int,
        *,
        stride: int = 1,
        padding: int | None = None,
        name: str | None = None,
    ) -> TensorSpec:
        """2-D convolution (+ bias folded in), NCHW."""
        if len(x.shape) != 4:
            raise ShapeError(f"conv2d expects NCHW input, got {x.shape}")
        if padding is None:
            padding = kernel // 2
        n, c, h, w = x.shape
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        if out_h < 1 or out_w < 1:
            raise ShapeError(
                f"conv2d output collapsed: input {x.shape}, kernel {kernel}, "
                f"stride {stride}, padding {padding}"
            )
        name = self.unique(name or "conv")
        weight = self._param(f"{name}/weight", (out_channels, c, kernel, kernel))
        out = self.graph.add_tensor(
            f"{name}/out",
            (n, out_channels, out_h, out_w),
            dtype=self.activation_dtype,
            split_axes=dict(_IMAGE_AXES),
        )
        workspace = int(
            CONV_WORKSPACE_FRACTION * (x.size_bytes + out.size_bytes)
        )
        self.graph.add_op(
            name,
            OpType.CONV2D,
            inputs=[x, weight],
            outputs=[out],
            attrs={"stride": stride, "padding": padding, "kernel": kernel},
            flops=conv2d_flops(n, c, out_channels, out_h, out_w, kernel, kernel),
            workspace_bytes=workspace,
        )
        return out

    def batchnorm(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Batch normalisation over NCHW channels (gamma/beta params)."""
        name = self.unique(name or "bn")
        channels = x.shape[1]
        scale = self._param(f"{name}/scale", (2, channels))  # gamma + beta
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name,
            OpType.BATCHNORM,
            inputs=[x, scale],
            outputs=[out],
            flops=5.0 * x.numel,
        )
        return out

    def relu(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Elementwise ReLU (output saved for backward)."""
        name = self.unique(name or "relu")
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.RELU, inputs=[x], outputs=[out], flops=float(x.numel),
        )
        return out

    def maxpool(
        self, x: TensorSpec, kernel: int, stride: int | None = None,
        padding: int = 0, name: str | None = None,
    ) -> TensorSpec:
        return self._pool(x, OpType.POOL_MAX, kernel, stride, padding, name or "maxpool")

    def avgpool(
        self, x: TensorSpec, kernel: int, stride: int | None = None,
        padding: int = 0, name: str | None = None,
    ) -> TensorSpec:
        return self._pool(x, OpType.POOL_AVG, kernel, stride, padding, name or "avgpool")

    def _pool(
        self, x: TensorSpec, op_type: OpType, kernel: int,
        stride: int | None, padding: int, name: str,
    ) -> TensorSpec:
        if len(x.shape) != 4:
            raise ShapeError(f"pool expects NCHW input, got {x.shape}")
        stride = stride or kernel
        n, c, h, w = x.shape
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        if out_h < 1 or out_w < 1:
            raise ShapeError(
                f"pool output collapsed: input {x.shape}, kernel {kernel}"
            )
        name = self.unique(name)
        out = self.graph.add_tensor(
            f"{name}/out", (n, c, out_h, out_w),
            dtype=self.activation_dtype, split_axes=dict(_IMAGE_AXES),
        )
        self.graph.add_op(
            name,
            op_type,
            inputs=[x],
            outputs=[out],
            attrs={"stride": stride, "padding": padding, "kernel": kernel},
            flops=float(out.numel * kernel * kernel),
        )
        return out

    def global_avgpool(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Spatial global average pooling to (N, C)."""
        name = self.unique(name or "gap")
        n, c = x.shape[0], x.shape[1]
        out = self.graph.add_tensor(
            f"{name}/out", (n, c),
            dtype=self.activation_dtype, split_axes=dict(_FLAT_AXES),
        )
        self.graph.add_op(
            name, OpType.POOL_AVG, inputs=[x], outputs=[out],
            flops=float(x.numel),
        )
        return out

    def flatten(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Collapse all non-batch axes into one (a free reshape view)."""
        name = self.unique(name or "flatten")
        n = x.shape[0]
        rest = x.numel // n
        out = self.graph.add_tensor(
            f"{name}/out", (n, rest),
            dtype=self.activation_dtype, split_axes=dict(_FLAT_AXES),
        )
        self.graph.add_op(name, OpType.RESHAPE, inputs=[x], outputs=[out])
        return out

    def add(self, x: TensorSpec, y: TensorSpec, name: str | None = None) -> TensorSpec:
        """Elementwise/broadcast addition (residual connections)."""
        if x.numel < y.numel:
            x, y = y, x
        if x.numel % y.numel != 0:
            raise ShapeError(f"cannot broadcast add {x.shape} + {y.shape}")
        name = self.unique(name or "add")
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.ADD, inputs=[x, y], outputs=[out],
            flops=float(x.numel),
        )
        return out

    def concat(
        self, xs: list[TensorSpec], axis: int = 1, name: str | None = None,
    ) -> TensorSpec:
        """Concatenate along ``axis`` (channel concat in Inception blocks)."""
        if not xs:
            raise ShapeError("concat of zero tensors")
        base = xs[0].shape
        for x in xs[1:]:
            if len(x.shape) != len(base):
                raise ShapeError(f"concat rank mismatch: {base} vs {x.shape}")
            for ax, (a, b) in enumerate(zip(base, x.shape)):
                if ax != axis and a != b:
                    raise ShapeError(
                        f"concat non-axis dims differ: {base} vs {x.shape}"
                    )
        name = self.unique(name or "concat")
        shape = list(base)
        shape[axis] = sum(x.shape[axis] for x in xs)
        out = self.graph.add_tensor(
            f"{name}/out", tuple(shape),
            dtype=self.activation_dtype, split_axes=dict(xs[0].split_axes),
        )
        self.graph.add_op(
            name, OpType.CONCAT, inputs=list(xs), outputs=[out],
            attrs={"axis": axis},
        )
        return out

    # -- dense / sequence layers ----------------------------------------------

    def linear(
        self, x: TensorSpec, out_features: int, name: str | None = None,
    ) -> TensorSpec:
        """Fully-connected layer on the last axis of (N, F) or (N, T, F)."""
        in_features = x.shape[-1]
        name = self.unique(name or "fc")
        weight = self._param(f"{name}/weight", (out_features, in_features))
        out_shape = x.shape[:-1] + (out_features,)
        axes = _FLAT_AXES if len(out_shape) == 2 else _SEQ_AXES
        out = self.graph.add_tensor(
            f"{name}/out", out_shape,
            dtype=self.activation_dtype, split_axes=dict(axes),
        )
        rows = x.numel // in_features
        self.graph.add_op(
            name,
            OpType.MATMUL,
            inputs=[x, weight],
            outputs=[out],
            flops=matmul_flops(rows, out_features, in_features),
        )
        return out

    def layernorm(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Layer normalisation over the last (hidden) axis."""
        name = self.unique(name or "ln")
        scale = self._param(f"{name}/scale", (2, x.shape[-1]))
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.LAYERNORM, inputs=[x, scale], outputs=[out],
            flops=5.0 * x.numel,
        )
        return out

    def gelu(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Elementwise GELU activation."""
        name = self.unique(name or "gelu")
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.GELU, inputs=[x], outputs=[out],
            flops=8.0 * x.numel,
        )
        return out

    def dropout(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Dropout (mask saved for backward; identity in numerics)."""
        name = self.unique(name or "dropout")
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.DROPOUT, inputs=[x], outputs=[out],
            flops=float(x.numel),
        )
        return out

    def softmax(self, x: TensorSpec, name: str | None = None) -> TensorSpec:
        """Softmax over the last axis (output saved for backward)."""
        name = self.unique(name or "softmax")
        out = self._like(x, f"{name}/out")
        self.graph.add_op(
            name, OpType.SOFTMAX, inputs=[x], outputs=[out],
            flops=5.0 * x.numel,
        )
        return out

    def embedding(
        self, ids: TensorSpec, vocab: int, hidden: int, name: str | None = None,
    ) -> TensorSpec:
        """Token embedding lookup: (N, T) int -> (N, T, H)."""
        name = self.unique(name or "embed")
        table = self._param(f"{name}/table", (vocab, hidden))
        n, t = ids.shape
        out = self.graph.add_tensor(
            f"{name}/out", (n, t, hidden),
            dtype=self.activation_dtype, split_axes=dict(_SEQ_AXES),
        )
        self.graph.add_op(
            name, OpType.EMBEDDING, inputs=[ids, table], outputs=[out],
            flops=float(out.numel),
        )
        return out

    def attention(
        self,
        x: TensorSpec,
        heads: int,
        *,
        kv: TensorSpec | None = None,
        name: str | None = None,
    ) -> TensorSpec:
        """Multi-head (self or cross) attention block, pre-projection in.

        Materialises the (N, heads, Tq, Tk) score tensors — the gigantic
        activations that motivate attribute-dimension splitting in
        Transformers (Figure 6).
        """
        name = self.unique(name or "attn")
        kv = kv if kv is not None else x
        n, t_q, hidden = x.shape
        t_k = kv.shape[1]
        if hidden % heads != 0:
            raise ShapeError(f"hidden {hidden} not divisible by heads {heads}")
        head_dim = hidden // heads

        q = self.linear(x, hidden, name=f"{name}/q_proj")
        k = self.linear(kv, hidden, name=f"{name}/k_proj")
        v = self.linear(kv, hidden, name=f"{name}/v_proj")

        score_axes = {DIM_SAMPLE: 0, DIM_PARAMETER: 1, DIM_ATTRIBUTE: 2}
        scores = self.graph.add_tensor(
            f"{name}/scores", (n, heads, t_q, t_k),
            dtype=self.activation_dtype, split_axes=dict(score_axes),
        )
        self.graph.add_op(
            f"{name}/qk",
            OpType.MATMUL,
            inputs=[q, k],
            outputs=[scores],
            flops=matmul_flops(n * heads * t_q, t_k, head_dim),
        )
        probs = self.softmax(scores, name=f"{name}/probs")
        probs = self.dropout(probs, name=f"{name}/attn_drop")
        context = self.graph.add_tensor(
            f"{name}/context", (n, t_q, hidden),
            dtype=self.activation_dtype, split_axes=dict(_SEQ_AXES),
        )
        self.graph.add_op(
            f"{name}/av",
            OpType.MATMUL,
            inputs=[probs, v],
            outputs=[context],
            flops=matmul_flops(n * heads * t_q, head_dim, t_k),
        )
        return self.linear(context, hidden, name=f"{name}/out_proj")

    # -- loss -----------------------------------------------------------------

    def cross_entropy_loss(
        self, logits: TensorSpec, labels: TensorSpec | None = None,
        name: str = "loss",
    ) -> TensorSpec:
        """Softmax cross-entropy; returns the per-batch loss tensor."""
        if labels is None:
            labels = self.labels(name=self.unique("labels"))
        loss = self.graph.add_tensor(
            self.unique(name), (logits.shape[0],),
            dtype=self.activation_dtype, split_axes={DIM_SAMPLE: 0},
        )
        self.graph.add_op(
            self.unique(f"{name}_op"),
            OpType.CROSS_ENTROPY,
            inputs=[logits, labels],
            outputs=[loss],
            flops=5.0 * logits.numel,
        )
        return loss

    # -- helpers ---------------------------------------------------------------

    def _like(self, x: TensorSpec, name: str) -> TensorSpec:
        return self.graph.add_tensor(
            name, x.shape, dtype=x.dtype, kind=TensorKind.ACTIVATION,
            split_axes=dict(x.split_axes),
        )

    def conv_bn_relu(
        self, x: TensorSpec, out_channels: int, kernel: int,
        *, stride: int = 1, padding: int | None = None, name: str | None = None,
    ) -> TensorSpec:
        """The ubiquitous conv → batchnorm → relu block."""
        name = self.unique(name or "cbr")
        x = self.conv2d(
            x, out_channels, kernel, stride=stride, padding=padding,
            name=f"{name}/conv",
        )
        x = self.batchnorm(x, name=f"{name}/bn")
        return self.relu(x, name=f"{name}/relu")
