"""Inception-V4 (Szegedy et al.) at ImageNet shapes.

The most branch-heavy model in the paper's benchmark set: wide
multi-branch inception blocks with channel concatenation, so many branch
outputs are simultaneously live. The paper reports TSPLIT's largest
sample-scale win (38x over Base) on this model.

The block structure follows the original paper (stem, 4x Inception-A,
Reduction-A, 7x Inception-B, Reduction-B, 3x Inception-C); 1xn/nx1
factorised convolutions are modelled as kxk convs with equivalent FLOPs
and channel widths, which preserves tensor sizes and arithmetic intensity.
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.tensor import TensorSpec
from repro.models.layers import ModelBuilder


def _scaled(channels: int, k: float) -> int:
    return max(1, round(channels * k))


def _stem(builder: ModelBuilder, x: TensorSpec, k: float) -> TensorSpec:
    x = builder.conv_bn_relu(x, _scaled(32, k), 3, stride=2, padding=0, name="stem/c1")
    x = builder.conv_bn_relu(x, _scaled(32, k), 3, padding=0, name="stem/c2")
    x = builder.conv_bn_relu(x, _scaled(64, k), 3, name="stem/c3")

    branch_pool = builder.maxpool(x, kernel=3, stride=2, name="stem/pool1")
    branch_conv = builder.conv_bn_relu(
        x, _scaled(96, k), 3, stride=2, padding=0, name="stem/c4",
    )
    # Align spatial dims: maxpool without padding to match conv output.
    x = builder.concat([_match(builder, branch_pool, branch_conv), branch_conv],
                       name="stem/cat1")

    b1 = builder.conv_bn_relu(x, _scaled(64, k), 1, padding=0, name="stem/b1a")
    b1 = builder.conv_bn_relu(b1, _scaled(96, k), 3, padding=0, name="stem/b1b")
    b2 = builder.conv_bn_relu(x, _scaled(64, k), 1, padding=0, name="stem/b2a")
    b2 = builder.conv_bn_relu(b2, _scaled(64, k), 7, name="stem/b2b")
    b2 = builder.conv_bn_relu(b2, _scaled(96, k), 3, padding=0, name="stem/b2c")
    x = builder.concat([b1, b2], name="stem/cat2")

    branch_conv = builder.conv_bn_relu(
        x, _scaled(192, k), 3, stride=2, padding=0, name="stem/c5",
    )
    branch_pool = builder.maxpool(x, kernel=3, stride=2, name="stem/pool2")
    return builder.concat(
        [_match(builder, branch_pool, branch_conv), branch_conv], name="stem/cat3",
    )


def _match(builder: ModelBuilder, x: TensorSpec, ref: TensorSpec) -> TensorSpec:
    """Crop-pool ``x`` so its spatial dims match ``ref`` (stem alignment)."""
    if x.shape[2:] == ref.shape[2:]:
        return x
    return builder.avgpool(
        x, kernel=x.shape[2] - ref.shape[2] + 1, stride=1,
        name=builder.unique("stem/align"),
    )


def _inception_a(builder: ModelBuilder, x: TensorSpec, k: float, name: str) -> TensorSpec:
    b1 = builder.conv_bn_relu(x, _scaled(96, k), 1, padding=0, name=f"{name}/b1")
    b2 = builder.conv_bn_relu(x, _scaled(64, k), 1, padding=0, name=f"{name}/b2a")
    b2 = builder.conv_bn_relu(b2, _scaled(96, k), 3, name=f"{name}/b2b")
    b3 = builder.conv_bn_relu(x, _scaled(64, k), 1, padding=0, name=f"{name}/b3a")
    b3 = builder.conv_bn_relu(b3, _scaled(96, k), 3, name=f"{name}/b3b")
    b3 = builder.conv_bn_relu(b3, _scaled(96, k), 3, name=f"{name}/b3c")
    b4 = builder.avgpool(x, kernel=3, stride=1, padding=1, name=f"{name}/pool")
    b4 = builder.conv_bn_relu(b4, _scaled(96, k), 1, padding=0, name=f"{name}/b4")
    return builder.concat([b1, b2, b3, b4], name=f"{name}/cat")


def _reduction_a(builder: ModelBuilder, x: TensorSpec, k: float, name: str) -> TensorSpec:
    b1 = builder.maxpool(x, kernel=3, stride=2, name=f"{name}/pool")
    b2 = builder.conv_bn_relu(x, _scaled(384, k), 3, stride=2, padding=0, name=f"{name}/b2")
    b3 = builder.conv_bn_relu(x, _scaled(192, k), 1, padding=0, name=f"{name}/b3a")
    b3 = builder.conv_bn_relu(b3, _scaled(224, k), 3, name=f"{name}/b3b")
    b3 = builder.conv_bn_relu(b3, _scaled(256, k), 3, stride=2, padding=0, name=f"{name}/b3c")
    b1 = _match(builder, b1, b2)
    return builder.concat([b1, b2, b3], name=f"{name}/cat")


def _inception_b(builder: ModelBuilder, x: TensorSpec, k: float, name: str) -> TensorSpec:
    b1 = builder.conv_bn_relu(x, _scaled(384, k), 1, padding=0, name=f"{name}/b1")
    b2 = builder.conv_bn_relu(x, _scaled(192, k), 1, padding=0, name=f"{name}/b2a")
    b2 = builder.conv_bn_relu(b2, _scaled(224, k), 7, name=f"{name}/b2b")
    b2 = builder.conv_bn_relu(b2, _scaled(256, k), 7, name=f"{name}/b2c")
    b3 = builder.conv_bn_relu(x, _scaled(192, k), 1, padding=0, name=f"{name}/b3a")
    b3 = builder.conv_bn_relu(b3, _scaled(192, k), 7, name=f"{name}/b3b")
    b3 = builder.conv_bn_relu(b3, _scaled(224, k), 7, name=f"{name}/b3c")
    b3 = builder.conv_bn_relu(b3, _scaled(224, k), 7, name=f"{name}/b3d")
    b3 = builder.conv_bn_relu(b3, _scaled(256, k), 7, name=f"{name}/b3e")
    b4 = builder.avgpool(x, kernel=3, stride=1, padding=1, name=f"{name}/pool")
    b4 = builder.conv_bn_relu(b4, _scaled(128, k), 1, padding=0, name=f"{name}/b4")
    return builder.concat([b1, b2, b3, b4], name=f"{name}/cat")


def _reduction_b(builder: ModelBuilder, x: TensorSpec, k: float, name: str) -> TensorSpec:
    b1 = builder.maxpool(x, kernel=3, stride=2, name=f"{name}/pool")
    b2 = builder.conv_bn_relu(x, _scaled(192, k), 1, padding=0, name=f"{name}/b2a")
    b2 = builder.conv_bn_relu(b2, _scaled(192, k), 3, stride=2, padding=0, name=f"{name}/b2b")
    b3 = builder.conv_bn_relu(x, _scaled(256, k), 1, padding=0, name=f"{name}/b3a")
    b3 = builder.conv_bn_relu(b3, _scaled(320, k), 7, name=f"{name}/b3b")
    b3 = builder.conv_bn_relu(b3, _scaled(320, k), 3, stride=2, padding=0, name=f"{name}/b3c")
    b1 = _match(builder, b1, b2)
    return builder.concat([b1, b2, b3], name=f"{name}/cat")


def _inception_c(builder: ModelBuilder, x: TensorSpec, k: float, name: str) -> TensorSpec:
    b1 = builder.conv_bn_relu(x, _scaled(256, k), 1, padding=0, name=f"{name}/b1")
    b2 = builder.conv_bn_relu(x, _scaled(384, k), 1, padding=0, name=f"{name}/b2a")
    b2a = builder.conv_bn_relu(b2, _scaled(256, k), 3, name=f"{name}/b2b")
    b2b = builder.conv_bn_relu(b2, _scaled(256, k), 3, name=f"{name}/b2c")
    b3 = builder.conv_bn_relu(x, _scaled(384, k), 1, padding=0, name=f"{name}/b3a")
    b3 = builder.conv_bn_relu(b3, _scaled(448, k), 3, name=f"{name}/b3b")
    b3 = builder.conv_bn_relu(b3, _scaled(512, k), 3, name=f"{name}/b3c")
    b3a = builder.conv_bn_relu(b3, _scaled(256, k), 3, name=f"{name}/b3d")
    b3b = builder.conv_bn_relu(b3, _scaled(256, k), 3, name=f"{name}/b3e")
    b4 = builder.avgpool(x, kernel=3, stride=1, padding=1, name=f"{name}/pool")
    b4 = builder.conv_bn_relu(b4, _scaled(256, k), 1, padding=0, name=f"{name}/b4")
    return builder.concat([b1, b2a, b2b, b3a, b3b, b4], name=f"{name}/cat")


def build_inception_v4(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 299,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """Inception-V4 training graph at the given sample/parameter scale."""
    builder = ModelBuilder(
        f"inception_v4[b={batch},k={param_scale:g}]", batch,
        precision=precision,
    )
    x = builder.input_image(3, image_size, image_size)
    x = _stem(builder, x, param_scale)
    for i in range(4):
        x = _inception_a(builder, x, param_scale, name=f"incA{i + 1}")
    x = _reduction_a(builder, x, param_scale, name="redA")
    for i in range(7):
        x = _inception_b(builder, x, param_scale, name=f"incB{i + 1}")
    x = _reduction_b(builder, x, param_scale, name="redB")
    for i in range(3):
        x = _inception_c(builder, x, param_scale, name=f"incC{i + 1}")
    x = builder.global_avgpool(x)
    x = builder.dropout(x, name="head/drop")
    logits = builder.linear(x, num_classes, name="head/fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)
