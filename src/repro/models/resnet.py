"""ResNet-50 / ResNet-101 / ResNet-152 (He et al.) with bottleneck blocks.

Multi-branch residual architecture: every block input feeds both the
residual branch and the shortcut, so gradient accumulation nodes appear in
the backward graph and liveness has genuinely overlapping branches — the
"complexity of multi-branch model architecture" the paper credits for
TSPLIT's large wins on ResNet-101 (Section VI-B).
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.tensor import TensorSpec
from repro.models.layers import ModelBuilder

#: (block counts per stage) for each variant.
_STAGES = {
    "resnet50": (3, 4, 6, 3),
    "resnet101": (3, 4, 23, 3),
    "resnet152": (3, 8, 36, 3),
}
_STAGE_CHANNELS = (64, 128, 256, 512)  # bottleneck inner widths
_EXPANSION = 4


def _bottleneck(
    builder: ModelBuilder,
    x: TensorSpec,
    inner: int,
    stride: int,
    name: str,
) -> TensorSpec:
    """1x1 -> 3x3 -> 1x1 bottleneck with projection shortcut when needed."""
    out_channels = inner * _EXPANSION
    shortcut = x
    if stride != 1 or x.shape[1] != out_channels:
        shortcut = builder.conv2d(
            x, out_channels, kernel=1, stride=stride, padding=0,
            name=f"{name}/proj",
        )
        shortcut = builder.batchnorm(shortcut, name=f"{name}/proj_bn")

    y = builder.conv2d(x, inner, kernel=1, padding=0, name=f"{name}/conv1")
    y = builder.batchnorm(y, name=f"{name}/bn1")
    y = builder.relu(y, name=f"{name}/relu1")
    y = builder.conv2d(y, inner, kernel=3, stride=stride, name=f"{name}/conv2")
    y = builder.batchnorm(y, name=f"{name}/bn2")
    y = builder.relu(y, name=f"{name}/relu2")
    y = builder.conv2d(y, out_channels, kernel=1, padding=0, name=f"{name}/conv3")
    y = builder.batchnorm(y, name=f"{name}/bn3")
    y = builder.add(y, shortcut, name=f"{name}/residual")
    return builder.relu(y, name=f"{name}/relu3")


def _build_resnet(
    variant: str,
    batch: int,
    param_scale: float,
    image_size: int,
    num_classes: int,
    optimizer: str,
    precision: str,
) -> Graph:
    stages = _STAGES[variant]
    builder = ModelBuilder(
        f"{variant}[b={batch},k={param_scale:g}]", batch,
        precision=precision,
    )
    x = builder.input_image(3, image_size, image_size)

    stem = max(1, round(64 * param_scale))
    x = builder.conv2d(x, stem, kernel=7, stride=2, name="stem/conv")
    x = builder.batchnorm(x, name="stem/bn")
    x = builder.relu(x, name="stem/relu")
    x = builder.maxpool(x, kernel=3, stride=2, padding=1, name="stem/pool")

    for stage_idx, (blocks, channels) in enumerate(zip(stages, _STAGE_CHANNELS)):
        inner = max(1, round(channels * param_scale))
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
            x = _bottleneck(
                builder, x, inner, stride,
                name=f"stage{stage_idx + 1}/block{block_idx + 1}",
            )

    x = builder.global_avgpool(x)
    logits = builder.linear(x, num_classes, name="fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)


def build_resnet50(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """ResNet-50 training graph at the given sample/parameter scale."""
    return _build_resnet(
        "resnet50", batch, param_scale, image_size, num_classes,
        optimizer, precision,
    )


def build_resnet101(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """ResNet-101 training graph at the given sample/parameter scale."""
    return _build_resnet(
        "resnet101", batch, param_scale, image_size, num_classes,
        optimizer, precision,
    )


def build_resnet152(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """ResNet-152 training graph at the given sample/parameter scale."""
    return _build_resnet(
        "resnet152", batch, param_scale, image_size, num_classes,
        optimizer, precision,
    )
