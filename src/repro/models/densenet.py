"""DenseNet-121 (Huang et al.): dense connectivity.

Every layer's output is concatenated into the input of *all* later
layers in its block, so early feature maps stay live through the whole
block — the most adversarial liveness pattern for a memory manager, and
a popular subject of recomputation papers (the "memory-efficient
DenseNets" line of work). Not in the paper's table, included as a
stress workload.
"""

from __future__ import annotations

from repro.graph.autodiff import build_training_graph
from repro.graph.graph import Graph
from repro.graph.tensor import TensorSpec
from repro.models.layers import ModelBuilder

#: Dense-block sizes of DenseNet-121.
_BLOCKS = (6, 12, 24, 16)
_GROWTH = 32


def _dense_layer(
    builder: ModelBuilder, x: TensorSpec, growth: int, name: str,
) -> TensorSpec:
    """BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv (bottleneck)."""
    y = builder.batchnorm(x, name=f"{name}/bn1")
    y = builder.relu(y, name=f"{name}/relu1")
    y = builder.conv2d(y, 4 * growth, 1, padding=0, name=f"{name}/conv1")
    y = builder.batchnorm(y, name=f"{name}/bn2")
    y = builder.relu(y, name=f"{name}/relu2")
    return builder.conv2d(y, growth, 3, name=f"{name}/conv2")


def _transition(
    builder: ModelBuilder, x: TensorSpec, name: str,
) -> TensorSpec:
    """Compression transition: BN -> 1x1 conv (halve channels) -> pool."""
    y = builder.batchnorm(x, name=f"{name}/bn")
    y = builder.conv2d(y, x.shape[1] // 2, 1, padding=0, name=f"{name}/conv")
    return builder.avgpool(y, 2, name=f"{name}/pool")


def build_densenet121(
    batch: int = 32,
    *,
    param_scale: float = 1.0,
    image_size: int = 224,
    num_classes: int = 1000,
    optimizer: str = "sgd_momentum",
    precision: str = "fp32",
) -> Graph:
    """DenseNet-121 training graph at the given sample/parameter scale."""
    growth = max(1, round(_GROWTH * param_scale))
    builder = ModelBuilder(
        f"densenet121[b={batch},k={param_scale:g}]", batch,
        precision=precision,
    )
    x = builder.input_image(3, image_size, image_size)
    x = builder.conv2d(x, 2 * growth, 7, stride=2, name="stem/conv")
    x = builder.batchnorm(x, name="stem/bn")
    x = builder.relu(x, name="stem/relu")
    x = builder.maxpool(x, 3, stride=2, padding=1, name="stem/pool")

    for block_index, layers in enumerate(_BLOCKS, start=1):
        features = [x]
        for layer_index in range(layers):
            concat_in = (
                features[0] if len(features) == 1
                else builder.concat(
                    features,
                    name=f"block{block_index}/cat{layer_index}",
                )
            )
            new = _dense_layer(
                builder, concat_in, growth,
                name=f"block{block_index}/layer{layer_index + 1}",
            )
            features.append(new)
        x = builder.concat(features, name=f"block{block_index}/out")
        if block_index < len(_BLOCKS):
            x = _transition(builder, x, name=f"trans{block_index}")

    x = builder.batchnorm(x, name="head/bn")
    x = builder.relu(x, name="head/relu")
    x = builder.global_avgpool(x)
    logits = builder.linear(x, num_classes, name="head/fc")
    loss = builder.cross_entropy_loss(logits)
    return build_training_graph(builder.graph, loss, optimizer=optimizer)
