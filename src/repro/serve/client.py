"""Minimal stdlib client for the serve daemon.

Used by the load-generator benchmark and the tutorial walkthrough; any
HTTP client works (the protocol is plain JSON over HTTP), this one just
keeps the repo dependency-free.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request


class ServeError(RuntimeError):
    """A non-2xx daemon response, carrying status and decoded body."""

    def __init__(self, status: int, body: dict) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServeClient:
    """Talk to one daemon: ``plan()``, ``healthz()``, ``stats()``."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: dict | None = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.url}{path}", data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout,
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (ValueError, json.JSONDecodeError):
                body = {"error": str(exc)}
            raise ServeError(exc.code, body) from exc

    def plan(self, **payload) -> dict:
        """POST one plan/run request; raises :class:`ServeError` on
        non-2xx (status 429 = admission rejected, 503 = draining)."""
        return self._request("/plan", payload)

    def healthz(self) -> dict:
        """GET the liveness payload."""
        return self._request("/healthz")

    def stats(self) -> dict:
        """GET the full stats payload."""
        return self._request("/stats")
