"""Plan-serving daemon: planning-as-a-service for fleet traffic.

``python -m repro serve`` boots a long-lived HTTP daemon that accepts
concurrent JSON plan/run requests and multiplexes them over one warm
:class:`~repro.pipeline.CompileCache`. The package splits transport
from logic:

* :class:`~repro.serve.service.PlanService` — the core: an
  admission-controlled request path with per-tenant quotas, a keyed
  single-flight table coalescing identical in-flight compiles, a warm
  graph/profiler cache, a bounded compile worker pool budgeted against
  the machine (:func:`~repro.analysis.parallel.worker_budget`), and a
  graceful drain;
* :class:`~repro.serve.http.PlanHTTPServer` — the stdlib
  ``ThreadingHTTPServer`` transport exposing ``POST /plan``,
  ``GET /healthz`` and ``GET /stats``;
* :class:`~repro.serve.client.ServeClient` — a tiny stdlib client used
  by the load-generator benchmark and the tutorial examples.

The response for a plan request carries a canonical content digest of
the produced plan (:func:`~repro.serve.service.plan_digest`), so
clients — and the benchmark's acceptance contract — can verify that
daemon-served plans are byte-identical to a direct
:func:`~repro.pipeline.compile.compile_run` for the same inputs.
"""

from repro.serve.client import ServeClient
from repro.serve.http import PlanHTTPServer, start_server
from repro.serve.service import (
    AdmissionController,
    AdmissionRejected,
    PlanService,
    ServeConfig,
    SingleFlight,
    plan_digest,
    request_key,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "PlanHTTPServer",
    "PlanService",
    "ServeClient",
    "ServeConfig",
    "SingleFlight",
    "plan_digest",
    "request_key",
    "start_server",
]
