"""The plan service: admission, coalescing, warm compile state.

Transport-agnostic core of the serve daemon. One
:class:`PlanService` owns:

* a shared persistent :class:`~repro.pipeline.CompileCache` (memory
  LRU, optionally disk-backed) that every request compiles against —
  profiles stay resident across requests, so a warm daemon re-plans in
  milliseconds;
* a warm **graph cache** (model registry name + batch + scale → built
  training graph), so repeated requests skip model construction; the
  compile path never mutates graphs, so cached graphs are shared
  read-only across concurrent computes;
* an :class:`AdmissionController` bounding total in-flight requests and
  per-tenant shares (overload sheds load at the door with a typed
  rejection instead of queueing unboundedly);
* a :class:`SingleFlight` table coalescing identical concurrent
  requests — N callers asking for the same ``(model, policy, GPU,
  capacity, options)`` key join one in-flight compute and share its
  result;
* a bounded compile worker pool whose slots each run under a
  :func:`~repro.analysis.parallel.worker_budget` share of the machine,
  so nested sweep fan-out inside a request cannot multiply into
  ``slots × REPRO_MAX_WORKERS`` workers.

Requests are plain dicts (the HTTP layer passes parsed JSON bodies
straight through); responses are plain dicts ready to serialise.
Validation problems raise :class:`RequestError`, overload raises
:class:`AdmissionRejected`, and a draining service raises
:class:`ServiceClosed` — the transport maps each to a status code.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.parallel import _max_workers_cap, worker_budget
from repro.core.plan import Plan
from repro.core.profiler import Profiler
from repro.hardware.gpu import GPU_PRESETS
from repro.models.registry import build_model, model_names
from repro.pipeline.cache import CompileCache, fingerprint
from repro.pipeline.compile import compile_run
from repro.pipeline.stages import PlanStage, ProfileStage, resolve_policy
from repro.policies.base import get_policy
from repro.runtime.engine import EngineOptions
from repro.telemetry import get_telemetry


class RequestError(ValueError):
    """A malformed or unserviceable request (HTTP 400)."""


class AdmissionRejected(RuntimeError):
    """Load shed at the door: queue full or tenant over quota (429)."""

    def __init__(self, reason: str, scope: str) -> None:
        super().__init__(reason)
        #: ``"queue"`` or ``"tenant"`` — which limit rejected us.
        self.scope = scope


class ServiceClosed(RuntimeError):
    """The service is draining or closed; no new work (HTTP 503)."""


def plan_digest(plan: Plan | None) -> str:
    """Canonical content digest of a plan (empty string for ``None``).

    SHA-256 over the sorted-key JSON of the plan's semantic payload
    (policy, cpu_update, per-tensor configs) — provenance is excluded,
    matching :class:`~repro.core.plan.Plan` equality. Two plans digest
    identically iff they configure identically, so a daemon-served plan
    can be checked byte-for-byte against a direct
    :func:`~repro.pipeline.compile.compile_run` without shipping the
    object itself.
    """
    if plan is None:
        return ""
    return fingerprint({
        "policy": plan.policy,
        "cpu_update": plan.cpu_update,
        "configs": {
            tid: {
                "opt": cfg.opt.value, "p_num": cfg.p_num, "dim": cfg.dim,
            }
            for tid, cfg in plan.configs.items()
        },
    })


@dataclass(frozen=True)
class PlanRequest:
    """One validated, normalised plan/run request."""

    model: str
    policy: str
    gpu: str
    batch: int
    param_scale: float = 1.0
    capacity_frac: float = 1.0
    mode: str = "plan"
    iterations: int | None = None
    overrides: tuple = ()
    tenant: str = "anonymous"

    @property
    def key(self) -> str:
        """Single-flight/coalescing key: everything but the tenant."""
        return request_key(self)


def request_key(request: PlanRequest) -> str:
    """Coalescing key: two requests that would compile and execute the
    exact same configuration share one fingerprint (tenant excluded —
    identical work coalesces across tenants)."""
    return fingerprint({
        "model": request.model,
        "policy": request.policy,
        "gpu": request.gpu,
        "batch": request.batch,
        "param_scale": request.param_scale,
        "capacity_frac": request.capacity_frac,
        "mode": request.mode,
        "iterations": request.iterations,
        "overrides": request.overrides,
    })


class SingleFlight:
    """Keyed single-flight table: duplicate concurrent calls join one.

    The first caller for a key becomes the *leader* and executes the
    supplier; callers arriving while the flight is open wait on its
    event and share the outcome (value or exception). The entry is
    removed once the flight lands, so a later request with the same key
    starts a fresh flight (it will typically be a cache hit instead).
    """

    class _Flight:
        __slots__ = ("event", "value", "error")

        def __init__(self) -> None:
            self.event = threading.Event()
            self.value = None
            self.error: BaseException | None = None

    def __init__(self) -> None:
        self._flights: dict[str, SingleFlight._Flight] = {}
        self._lock = threading.Lock()
        self.flights = 0
        self.joins = 0

    def run(self, key: str, supplier) -> tuple[object, bool]:
        """``(outcome, coalesced)``: lead the flight or join one."""
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = SingleFlight._Flight()
                self._flights[key] = flight
                self.flights += 1
            else:
                self.joins += 1
        if leader:
            try:
                flight.value = supplier()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return flight.value, False
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, True

    def stats(self) -> dict:
        """Flight/join counters plus the derived coalescing ratio."""
        with self._lock:
            flights, joins = self.flights, self.joins
        return {
            "flights": flights,
            "joins": joins,
            "coalescing_ratio": (
                (flights + joins) / flights if flights else 0.0
            ),
        }


class AdmissionController:
    """Bounded admission: a global in-flight cap and per-tenant quotas.

    ``acquire`` either admits (counting the request against both
    limits) or raises :class:`AdmissionRejected`; ``release`` must be
    called exactly once per successful acquire.
    """

    def __init__(self, max_inflight: int, tenant_quota: int) -> None:
        if max_inflight < 1 or tenant_quota < 1:
            raise ValueError("admission limits must be >= 1")
        self.max_inflight = max_inflight
        self.tenant_quota = tenant_quota
        self._lock = threading.Lock()
        self._inflight = 0
        self._by_tenant: dict[str, int] = {}
        self.rejected_queue = 0
        self.rejected_tenant = 0

    def acquire(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.rejected_queue += 1
                raise AdmissionRejected(
                    f"request queue full ({self.max_inflight} in flight)",
                    scope="queue",
                )
            held = self._by_tenant.get(tenant, 0)
            if held >= self.tenant_quota:
                self.rejected_tenant += 1
                raise AdmissionRejected(
                    f"tenant {tenant!r} over quota "
                    f"({held}/{self.tenant_quota} in flight)",
                    scope="tenant",
                )
            self._inflight += 1
            self._by_tenant[tenant] = held + 1

    def release(self, tenant: str) -> None:
        """Return one admitted slot."""
        with self._lock:
            self._inflight -= 1
            held = self._by_tenant.get(tenant, 0) - 1
            if held <= 0:
                self._by_tenant.pop(tenant, None)
            else:
                self._by_tenant[tenant] = held

    def stats(self) -> dict:
        """In-flight occupancy and rejection counters."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "tenant_quota": self.tenant_quota,
                "by_tenant": dict(sorted(self._by_tenant.items())),
                "rejected_queue": self.rejected_queue,
                "rejected_tenant": self.rejected_tenant,
            }


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`PlanService` instance."""

    #: Compile worker slots (bounds CPU concurrency; HTTP handler
    #: threads only wait, they never compile).
    workers: int = 4
    #: Global admission cap: requests in flight (executing + waiting).
    max_inflight: int = 64
    #: Per-tenant in-flight cap.
    tenant_quota: int = 16
    #: Persistent cache directory (``None`` = memory-only tier).
    cache_dir: str | None = None
    #: In-memory LRU capacity of the shared compile cache.
    cache_entries: int = 2048
    #: Warm graph (model build) LRU capacity.
    graph_cache_entries: int = 64
    #: Default tenant for requests that do not name one.
    default_tenant: str = "anonymous"


@dataclass
class _ServerCounters:
    """Process-lifetime request counters (lock owned by the service)."""

    requests: int = 0
    ok: int = 0
    infeasible: int = 0
    invalid: int = 0
    closed: int = 0
    errors: int = 0
    by_tenant: dict = field(default_factory=dict)


class PlanService:
    """The serve daemon's core: warm, admission-controlled planning."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        cache: CompileCache | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache = cache if cache is not None else CompileCache(
            max_entries=self.config.cache_entries,
            disk_dir=self.config.cache_dir,
        )
        self.admission = AdmissionController(
            self.config.max_inflight, self.config.tenant_quota,
        )
        self.flights = SingleFlight()
        self._counters = _ServerCounters()
        self._counters_lock = threading.Lock()
        self._graphs: OrderedDict[tuple, object] = OrderedDict()
        self._graphs_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        machine_cap = _max_workers_cap() or os.cpu_count() or 4
        #: Each compile slot's share of the machine: nested sweep
        #: fan-out inside a request resolves at most this many workers,
        #: so `workers` concurrent requests stay within the machine cap.
        self.budget_share = max(1, machine_cap // self.config.workers)
        self._closed = False
        self._started = time.time()

    # -- request path ------------------------------------------------------

    def parse_request(self, payload: dict) -> PlanRequest:
        """Validate a raw JSON payload into a :class:`PlanRequest`."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        unknown = set(payload) - {
            "model", "policy", "gpu", "batch", "param_scale",
            "capacity_frac", "mode", "iterations", "overrides", "tenant",
            "precision",
        }
        if unknown:
            raise RequestError(f"unknown fields: {sorted(unknown)}")
        model = payload.get("model", "")
        if model not in model_names():
            raise RequestError(
                f"unknown model {model!r}; available: {model_names()}"
            )
        policy = payload.get("policy", "tsplit")
        try:
            get_policy(policy)  # populates the lazy registry, validates
        except Exception as exc:
            raise RequestError(str(exc)) from exc
        gpu = payload.get("gpu", "rtx_titan")
        if gpu not in GPU_PRESETS:
            raise RequestError(
                f"unknown GPU {gpu!r}; available: {list(GPU_PRESETS)}"
            )
        try:
            batch = int(payload.get("batch", 64))
            param_scale = float(payload.get("param_scale", 1.0))
            capacity_frac = float(payload.get("capacity_frac", 1.0))
        except (TypeError, ValueError) as exc:
            raise RequestError(f"malformed numeric field: {exc}") from exc
        if batch < 1:
            raise RequestError(f"batch must be >= 1, got {batch}")
        if not 0.0 < capacity_frac <= 1.0:
            raise RequestError(
                f"capacity_frac must be in (0, 1], got {capacity_frac}"
            )
        mode = payload.get("mode", "plan")
        if mode not in ("plan", "run"):
            raise RequestError(f"mode must be 'plan' or 'run', got {mode!r}")
        iterations = payload.get("iterations")
        if iterations is not None:
            try:
                iterations = int(iterations)
            except (TypeError, ValueError) as exc:
                raise RequestError(f"malformed iterations: {exc}") from exc
            if iterations < 1:
                raise RequestError("iterations must be >= 1")
            if mode != "run":
                raise RequestError("iterations requires mode='run'")
        overrides = dict(payload.get("overrides") or {})
        precision = payload.get("precision")
        if precision is not None:
            if precision not in ("fp32", "fp16"):
                raise RequestError(
                    f"precision must be fp32 or fp16, got {precision!r}"
                )
            overrides["precision"] = precision
        tenant = str(payload.get("tenant") or self.config.default_tenant)
        return PlanRequest(
            model=model, policy=policy, gpu=gpu, batch=batch,
            param_scale=param_scale, capacity_frac=capacity_frac,
            mode=mode, iterations=iterations,
            overrides=tuple(sorted(overrides.items())), tenant=tenant,
        )

    def handle_plan(self, payload: dict) -> dict:
        """Serve one plan/run request end to end.

        Raises :class:`RequestError` (bad payload),
        :class:`AdmissionRejected` (overload) or :class:`ServiceClosed`
        (draining); every other outcome — including infeasible
        configurations — is a response dict.
        """
        started = time.perf_counter()
        if self._closed:
            self._count("closed")
            raise ServiceClosed("service is draining")
        try:
            request = self.parse_request(payload)
        except RequestError:
            self._count("invalid")
            raise
        self._count("requests", tenant=request.tenant)
        self.admission.acquire(request.tenant)
        try:
            body, coalesced = self.flights.run(
                request.key, lambda: self._submit(request),
            )
        finally:
            self.admission.release(request.tenant)
        # Joiners share the leader's body; personalise the envelope.
        body = dict(body)
        body["coalesced"] = coalesced
        body["elapsed_ms"] = (time.perf_counter() - started) * 1e3
        self._count("ok" if body["feasible"] else "infeasible")
        return body

    def _count(self, name: str, tenant: str | None = None) -> None:
        with self._counters_lock:
            setattr(self._counters, name, getattr(self._counters, name) + 1)
            if tenant is not None:
                by_tenant = self._counters.by_tenant
                by_tenant[tenant] = by_tenant.get(tenant, 0) + 1

    def _submit(self, request: PlanRequest):
        """Run the compute on a bounded worker slot (leader only)."""
        if self._closed:
            raise ServiceClosed("service is draining")
        try:
            future = self._executor.submit(self._compute, request)
        except RuntimeError as exc:  # executor already shut down
            raise ServiceClosed("service is draining") from exc
        return future.result()

    # -- warm state --------------------------------------------------------

    def _graph(self, request: PlanRequest):
        """The (cached) built training graph for a request."""
        key = (
            request.model, request.batch, request.param_scale,
            request.overrides,
        )
        with self._graphs_lock:
            graph = self._graphs.get(key)
            if graph is not None:
                self._graphs.move_to_end(key)
                return graph
        graph = build_model(
            request.model, request.batch,
            param_scale=request.param_scale, **dict(request.overrides),
        )
        with self._graphs_lock:
            self._graphs[key] = graph
            self._graphs.move_to_end(key)
            while len(self._graphs) > self.config.graph_cache_entries:
                self._graphs.popitem(last=False)
        return graph

    # -- compute -----------------------------------------------------------

    def _compute(self, request: PlanRequest) -> dict:
        """One compile against the warm caches (runs on a worker slot)."""
        with worker_budget(self.budget_share):
            graph = self._graph(request)
            gpu = GPU_PRESETS[request.gpu]
            if request.capacity_frac != 1.0:
                gpu = gpu.with_memory(
                    int(gpu.memory_bytes * request.capacity_frac),
                )
            base = {
                "model": request.model,
                "policy": request.policy,
                "gpu": request.gpu,
                "batch": request.batch,
                "mode": request.mode,
                "key": request.key,
            }
            if request.mode == "plan":
                profile = ProfileStage(Profiler(gpu)).run(
                    graph, gpu, cache=self.cache,
                )
                plan = PlanStage(resolve_policy(request.policy)).run(
                    graph, gpu, profile, cache=self.cache,
                )
                return {
                    **base,
                    "feasible": plan.feasible,
                    "failure": plan.error,
                    "plan_digest": plan_digest(plan.plan),
                    "plan_summary": (
                        plan.plan.summary(graph) if plan.feasible else ""
                    ),
                    "cached": {
                        "profile": profile.cached, "plan": plan.cached,
                    },
                }
            compiled = compile_run(
                graph, request.policy, gpu,
                cache=self.cache,
                engine_options=EngineOptions(record_trace=False),
                iterations=request.iterations,
            )
            result = compiled.result
            body = {
                **base,
                "feasible": result.feasible,
                "failure": result.failure,
                "plan_digest": plan_digest(result.plan),
                "plan_summary": (
                    result.plan.summary(graph)
                    if result.plan is not None else ""
                ),
                "cached": {
                    "profile": compiled.profile.cached,
                    "plan": compiled.plan.cached,
                },
            }
            if result.feasible:
                trace = result.trace
                body.update({
                    "iteration_time": trace.iteration_time,
                    "throughput": trace.throughput,
                    "peak_memory": trace.peak_memory,
                })
            return body

    # -- introspection + lifecycle ----------------------------------------

    def healthz(self) -> dict:
        """Liveness payload: status, uptime, occupancy."""
        return {
            "status": "draining" if self._closed else "ok",
            "uptime_s": time.time() - self._started,
            "inflight": self.admission.stats()["inflight"],
            "workers": self.config.workers,
        }

    def stats(self) -> dict:
        """Everything `/stats` surfaces: server counters, single-flight
        coalescing, admission occupancy, cache stats, telemetry."""
        with self._counters_lock:
            counters = {
                "requests": self._counters.requests,
                "ok": self._counters.ok,
                "infeasible": self._counters.infeasible,
                "invalid": self._counters.invalid,
                "closed": self._counters.closed,
                "errors": self._counters.errors,
                "by_tenant": dict(sorted(self._counters.by_tenant.items())),
            }
        telemetry = get_telemetry()
        return {
            "server": {
                **counters,
                "uptime_s": time.time() - self._started,
                "workers": self.config.workers,
                "budget_share": self.budget_share,
            },
            "coalescing": self.flights.stats(),
            "admission": self.admission.stats(),
            "cache": self.cache.cache_stats(),
            "telemetry": (
                telemetry.metrics.snapshot()
                if telemetry.metrics.enabled else {}
            ),
        }

    def close(self, *, drain: bool = True) -> None:
        """Stop admitting work; with ``drain`` wait for in-flight
        computes to land before returning (graceful shutdown)."""
        self._closed = True
        self._executor.shutdown(wait=drain, cancel_futures=not drain)
