"""HTTP transport for the plan service (stdlib only).

A :class:`PlanHTTPServer` wraps one
:class:`~repro.serve.service.PlanService` behind a
``ThreadingHTTPServer``: each connection is handled on its own thread,
but handler threads only parse/wait — actual compiles run on the
service's bounded worker pool, so HTTP concurrency never oversubscribes
the machine.

Endpoints:

* ``POST /plan`` — one JSON plan/run request; responses carry the plan
  digest, cache provenance and coalescing flag. Errors map to status
  codes: 400 (malformed), 429 (admission rejected; the body names the
  exceeded limit), 503 (draining), 500 (unexpected).
* ``GET /healthz`` — liveness + occupancy.
* ``GET /stats`` — server counters, coalescing ratio, admission
  occupancy, the shared cache's folded hit-rate stats, and the active
  telemetry session's metric snapshot.

Graceful shutdown: :meth:`PlanHTTPServer.drain` stops accepting,
rejects new requests with 503, and waits for in-flight compiles to
land before the socket closes.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import (
    AdmissionRejected,
    PlanService,
    RequestError,
    ServiceClosed,
)


class _PlanRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the owning server's service."""

    server: "PlanHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, body: dict) -> None:
        encoded = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Serve the introspection endpoints: /healthz and /stats."""
        service = self.server.service
        if self.path == "/healthz":
            self._reply(200, service.healthz())
        elif self.path == "/stats":
            self._reply(200, service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        """Serve one plan/run request (``POST /plan``)."""
        if self.path not in ("/plan", "/v1/plan"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed JSON body: {exc}"})
            return
        service = self.server.service
        try:
            self._reply(200, service.handle_plan(payload))
        except RequestError as exc:
            self._reply(400, {"error": str(exc)})
        except AdmissionRejected as exc:
            self._reply(429, {"error": str(exc), "scope": exc.scope})
        except ServiceClosed as exc:
            self._reply(503, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive surface
            service._count("errors")
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


class PlanHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`PlanService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: PlanService,
        *,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _PlanRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work."""
        self.service.close(drain=True)
        self.shutdown()


def start_server(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> tuple[PlanHTTPServer, threading.Thread]:
    """Boot a serving thread; returns ``(server, thread)``.

    ``port=0`` binds an ephemeral port (see :attr:`PlanHTTPServer.url`).
    The thread is a daemon: callers should still :meth:`~PlanHTTPServer.drain`
    for a graceful stop.
    """
    server = PlanHTTPServer((host, port), service, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True,
    )
    thread.start()
    return server, thread
