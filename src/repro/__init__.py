"""TSPLIT reproduction: fine-grained GPU memory management for DNN
training via tensor splitting (Nie et al., ICDE 2022), rebuilt on a
simulated GPU substrate.

Quickstart::

    from repro import RTX_TITAN, build_model, run_policy

    graph = build_model("vgg16", batch=512)
    result = run_policy(graph, "tsplit", RTX_TITAN)
    print(result.trace.describe())

The package layers:

* :mod:`repro.graph` — dataflow-graph DNN framework (tensors, operators,
  autodiff, DFS scheduling, liveness);
* :mod:`repro.models` — the six evaluation models of the paper;
* :mod:`repro.hardware` — GPU/PCIe performance model, memory pool,
  streams;
* :mod:`repro.core` — the TSPLIT contribution: sTensor abstraction, cost
  models (Eq. 2-6), planner (Algorithm 2), augmented-graph generation;
* :mod:`repro.runtime` — discrete-event execution engine;
* :mod:`repro.policies` — TSPLIT and every baseline (vDNN, Checkpoints,
  SuperNeurons, ZeRO-Offload, FairScale-Offload);
* :mod:`repro.analysis` — the experiment drivers behind every table and
  figure;
* :mod:`repro.numerics` — numpy validation of split/merge semantics.
"""

from repro.analysis.runner import EvalResult, evaluate, run_policy
from repro.core.plan import MemOption, Plan, TensorConfig
from repro.core.planner import PlannerOptions, TsplitPlanner
from repro.core.stensor import STensor
from repro.graph.graph import Graph
from repro.hardware.gpu import (
    GPU_PRESETS,
    GTX_1080TI,
    RTX_TITAN,
    GPUSpec,
)
from repro.models.registry import build_model, model_names
from repro.policies.base import get_policy

__version__ = "1.0.0"

__all__ = [
    "EvalResult",
    "evaluate",
    "run_policy",
    "MemOption",
    "Plan",
    "TensorConfig",
    "PlannerOptions",
    "TsplitPlanner",
    "STensor",
    "Graph",
    "GPU_PRESETS",
    "GTX_1080TI",
    "RTX_TITAN",
    "GPUSpec",
    "build_model",
    "model_names",
    "get_policy",
    "__version__",
]
