"""Tensor specifications: the edges of the dataflow graph.

A :class:`TensorSpec` is a *description* of a tensor — shape, dtype, role —
not a container of values. Planning and simulation only need descriptions;
numeric execution (``repro.numerics``) attaches real arrays separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.units import DType, format_bytes, numel


class TensorKind(enum.Enum):
    """Role of a tensor in the training iteration.

    The paper's memory accounting (Section II) distinguishes model
    parameters, feature maps (forward activations) and gradient maps; we
    additionally model optimizer state (for the ZeRO-Offload comparison)
    and per-operator workspace (e.g. FFT convolution scratch).
    """

    INPUT = "input"                    # training batch (X, labels)
    PARAM = "param"                    # model weights, live all iteration
    ACTIVATION = "activation"          # forward feature map
    GRAD_ACTIVATION = "grad_activation"  # gradient of a feature map
    GRAD_PARAM = "grad_param"          # gradient of a weight
    OPTIMIZER_STATE = "optimizer_state"  # momentum / Adam moments
    WORKSPACE = "workspace"            # transient operator scratch

    @property
    def is_gradient(self) -> bool:
        return self in (TensorKind.GRAD_ACTIVATION, TensorKind.GRAD_PARAM)

    @property
    def is_persistent(self) -> bool:
        """Persistent tensors live across iterations (weights, opt state)."""
        return self in (TensorKind.PARAM, TensorKind.OPTIMIZER_STATE)


# Named split dimensions (Figure 6: sample dimension vs parameter dimension).
# The mapping from a named dimension to a shape axis is per-tensor.
DIM_SAMPLE = "sample"
DIM_PARAMETER = "parameter"
DIM_ATTRIBUTE = "attribute"


@dataclass
class TensorSpec:
    """Description of one tensor (one edge) in the dataflow graph.

    Parameters
    ----------
    tensor_id:
        Unique id within the owning :class:`~repro.graph.graph.Graph`.
    name:
        Human-readable name (``"conv1_1/out"``).
    shape:
        Dense shape. Convention: CNN activations are NCHW, linear layer
        activations are (N, T, H) or (N, H).
    dtype:
        Element type, FLOAT32 by default (the paper trains in FP32).
    kind:
        Role of the tensor (see :class:`TensorKind`).
    split_axes:
        Maps named split dimensions (``"sample"``, ``"parameter"``,
        ``"attribute"``) to an axis index of ``shape``. Only dimensions
        listed here may be targeted by the tensor-split primitive; e.g.
        model parameters have no sample dimension.
    producer:
        Op id of the producing operator, or ``None`` for graph inputs,
        parameters and optimizer state.
    consumers:
        Op ids of all consuming operators, in graph-construction order.
    """

    tensor_id: int
    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32
    kind: TensorKind = TensorKind.ACTIVATION
    split_axes: dict[str, int] = field(default_factory=dict)
    producer: int | None = None
    consumers: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.shape = tuple(int(d) for d in self.shape)
        for dim in self.shape:
            if dim <= 0:
                raise ValueError(
                    f"tensor {self.name!r}: non-positive dim in {self.shape}"
                )
        for dim_name, axis in self.split_axes.items():
            if not 0 <= axis < len(self.shape):
                raise ValueError(
                    f"tensor {self.name!r}: split axis {axis} for "
                    f"{dim_name!r} out of range for shape {self.shape}"
                )
        # Shape is immutable after validation; precompute the hot sizes
        # (the planner asks for size_bytes millions of times per plan).
        self._numel = numel(self.shape)
        self._size_bytes = self._numel * self.dtype.nbytes

    @property
    def numel(self) -> int:
        return self._numel

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def splittable_dims(self) -> tuple[str, ...]:
        """Named dimensions on which this tensor may be split."""
        return tuple(self.split_axes)

    def axis_for(self, dim_name: str) -> int:
        """Shape axis backing the named split dimension."""
        try:
            return self.split_axes[dim_name]
        except KeyError:
            raise KeyError(
                f"tensor {self.name!r} has no split dimension {dim_name!r}; "
                f"available: {sorted(self.split_axes)}"
            ) from None

    def micro_shape(self, dim_name: str, p_num: int, index: int) -> tuple[int, ...]:
        """Shape of micro-tensor ``index`` after splitting ``p_num`` ways.

        Uneven splits follow numpy's ``array_split`` convention: the first
        ``extent % p_num`` micro-tensors get one extra slice.
        """
        if p_num < 1:
            raise ValueError(f"p_num must be >= 1, got {p_num}")
        if not 0 <= index < p_num:
            raise ValueError(f"micro index {index} out of range for p_num {p_num}")
        axis = self.axis_for(dim_name)
        extent = self.shape[axis]
        if p_num > extent:
            raise ValueError(
                f"cannot split tensor {self.name!r} axis {axis} "
                f"(extent {extent}) into {p_num} parts"
            )
        base, extra = divmod(extent, p_num)
        part = base + (1 if index < extra else 0)
        shape = list(self.shape)
        shape[axis] = part
        return tuple(shape)

    def micro_size_bytes(self, dim_name: str, p_num: int, index: int) -> int:
        """Size in bytes of one micro-tensor of a ``p_num``-way split."""
        return numel(self.micro_shape(dim_name, p_num, index)) * self.dtype.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TensorSpec(id={self.tensor_id}, name={self.name!r}, "
            f"shape={self.shape}, kind={self.kind.value}, "
            f"size={format_bytes(self.size_bytes)})"
        )
