"""Execution scheduling — Algorithm 1 of the paper.

The paper constructs the operation schedule with a depth-first topological
sort: an operator is pushed onto the schedule as soon as its last
dependency is satisfied, and its successors are then explored
depth-first. Multi-branch networks (ResNet, Inception) admit several valid
topological orders; DFS keeps branches contiguous, which minimises the
number of simultaneously-live branch outputs.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.graph.graph import Graph


def dfs_schedule(graph: Graph) -> list[int]:
    """Return op ids in DFS topological order (Algorithm 1).

    An op is *ready* when every input tensor produced by another op has
    been scheduled. Source ops (all inputs are graph inputs / parameters)
    seed the traversal in insertion order. Implemented iteratively so deep
    chains (e.g. 24-layer transformers with long backward chains) do not
    hit the recursion limit.
    """
    ref_cnt: dict[int, int] = {}
    for op in graph.ops.values():
        deps = 0
        for tid in op.inputs:
            producer = graph.tensors[tid].producer
            if producer is not None and producer != op.op_id:
                deps += 1
        ref_cnt[op.op_id] = deps

    # Successor map: consumers of each op's outputs.
    successors: dict[int, list[int]] = {op_id: [] for op_id in graph.ops}
    for op in graph.ops.values():
        seen: set[int] = set()
        for tid in op.outputs:
            for consumer in graph.tensors[tid].consumers:
                if consumer != op.op_id and consumer not in seen:
                    seen.add(consumer)
                    successors[op.op_id].append(consumer)

    schedule: list[int] = []
    scheduled: set[int] = set()

    roots = [op_id for op_id, cnt in ref_cnt.items() if cnt == 0]
    # Stack of ops to visit; reversed so earlier-inserted roots run first.
    stack = list(reversed(roots))
    while stack:
        op_id = stack.pop()
        if op_id in scheduled:
            continue
        schedule.append(op_id)
        scheduled.add(op_id)
        ready: list[int] = []
        for succ in successors[op_id]:
            ref_cnt[succ] -= 1
            if ref_cnt[succ] == 0:
                ready.append(succ)
        # Depth-first: the first ready successor is explored next, so push
        # it last (LIFO).
        for succ in reversed(ready):
            stack.append(succ)

    if len(schedule) != len(graph.ops):
        missing = [
            graph.ops[op_id].name
            for op_id in graph.ops
            if op_id not in scheduled
        ]
        raise SchedulingError(
            f"graph {graph.name!r}: {len(missing)} ops unschedulable "
            f"(cycle or dangling dependency): {missing[:8]}"
        )
    return schedule


def memory_aware_schedule(graph: Graph) -> list[int]:
    """Greedy memory-aware topological order.

    At every step, among the ready operators, run the one with the best
    immediate memory delta: bytes it frees (inputs at their last use)
    minus bytes it allocates (outputs + workspace). A classic
    Sethi-Ullman-flavoured heuristic: branches that release big tensors
    run first, which often lowers the peak on branchy graphs compared to
    plain DFS. Ties break on insertion order, keeping the schedule
    deterministic.

    Still a valid topological order — interchangeable with
    :func:`dfs_schedule` everywhere a schedule is accepted.
    """
    remaining_deps: dict[int, int] = {}
    for op in graph.ops.values():
        deps = 0
        for tid in op.inputs:
            producer = graph.tensors[tid].producer
            if producer is not None and producer != op.op_id:
                deps += 1
        remaining_deps[op.op_id] = deps

    remaining_uses: dict[int, int] = {
        tid: len(t.consumers) for tid, t in graph.tensors.items()
    }

    def delta(op_id: int) -> int:
        op = graph.ops[op_id]
        allocated = op.workspace_bytes + sum(
            graph.tensors[t].size_bytes for t in op.outputs
        )
        freed = sum(
            graph.tensors[t].size_bytes
            for t in set(op.inputs)
            if remaining_uses.get(t, 0) == 1
            and graph.tensors[t].producer is not None
        )
        return allocated - freed

    ready = sorted(
        op_id for op_id, count in remaining_deps.items() if count == 0
    )
    schedule: list[int] = []
    scheduled: set[int] = set()
    while ready:
        best_index = min(
            range(len(ready)), key=lambda i: (delta(ready[i]), ready[i]),
        )
        op_id = ready.pop(best_index)
        schedule.append(op_id)
        scheduled.add(op_id)
        op = graph.ops[op_id]
        for tid in set(op.inputs):
            remaining_uses[tid] = remaining_uses.get(tid, 1) - 1
        seen: set[int] = set()
        for tid in op.outputs:
            for consumer in graph.tensors[tid].consumers:
                if consumer in seen or consumer == op_id:
                    continue
                seen.add(consumer)
                remaining_deps[consumer] -= 1
                if remaining_deps[consumer] == 0:
                    ready.append(consumer)

    if len(schedule) != len(graph.ops):
        raise SchedulingError(
            f"graph {graph.name!r}: memory-aware scheduling left "
            f"{len(graph.ops) - len(schedule)} ops unscheduled"
        )
    return schedule
