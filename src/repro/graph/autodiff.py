"""Backward-graph construction (reverse-mode autodiff over the DFG).

Given a forward-only graph and its loss tensor, :func:`build_training_graph`
appends the backward operators (one per differentiable forward operator,
plus explicit gradient-accumulation nodes where a tensor feeds several
consumers) and the optimizer-update operators. The result is a full
training-iteration graph matching Figure 3 of the paper: feature maps stay
live from their forward producer until their backward consumer, which is
exactly the memory pattern the memory manager attacks.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.ops import Operator, OpType, Phase
from repro.graph.tensor import TensorKind, TensorSpec

#: Optimizer name -> number of per-parameter state tensors.
OPTIMIZER_STATE_SLOTS = {
    "sgd": 0,
    "sgd_momentum": 1,
    "adam": 2,
}


def build_training_graph(
    graph: Graph,
    loss: TensorSpec | int,
    *,
    optimizer: str = "sgd_momentum",
) -> Graph:
    """Append backward and update phases to a forward graph, in place.

    Parameters
    ----------
    graph:
        Forward-only graph (will be mutated and also returned).
    loss:
        The scalar-ish loss tensor the backward pass starts from.
    optimizer:
        ``"sgd"``, ``"sgd_momentum"`` or ``"adam"``; controls how many
        optimizer-state tensors each parameter carries and the update-op
        cost.

    Returns
    -------
    Graph
        The same graph object, now containing FORWARD + BACKWARD + UPDATE
        phases.
    """
    if optimizer not in OPTIMIZER_STATE_SLOTS:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; "
            f"expected one of {sorted(OPTIMIZER_STATE_SLOTS)}"
        )
    loss_id = loss.tensor_id if isinstance(loss, TensorSpec) else int(loss)
    if loss_id not in graph.tensors:
        raise GraphError(f"loss tensor id {loss_id} not in graph")
    if graph.tensors[loss_id].producer is None:
        raise GraphError("loss tensor has no producer op")
    if graph.ops_in_phase(Phase.BACKWARD):
        raise GraphError("graph already has a backward phase")

    forward_ops = graph.ops_in_phase(Phase.FORWARD)
    builder = _BackwardBuilder(graph, loss_id)
    for op in reversed(forward_ops):
        builder.add_backward_for(op)
    _add_update_phase(graph, builder, optimizer)
    return graph


class _BackwardBuilder:
    """Tracks gradient contributions while emitting backward ops."""

    def __init__(self, graph: Graph, loss_id: int) -> None:
        self.graph = graph
        self.loss_id = loss_id
        # tensor id -> finalized gradient tensor id
        self.grad_of: dict[int, int] = {}
        # tensor id -> list of partial-gradient tensor ids to accumulate
        self.contributions: dict[int, list[int]] = {}

    def add_backward_for(self, op: Operator) -> None:
        """Emit the backward op for one forward op, if it is on the loss path."""
        graph = self.graph
        is_loss_op = self.loss_id in op.outputs

        out_grads: list[int] = []
        if not is_loss_op:
            for tid in op.outputs:
                grad = self._materialize_grad(tid)
                if grad is not None:
                    out_grads.append(grad)
            if not out_grads:
                return  # op does not contribute to the loss

        saved: list[int] = []
        spec = op.op_type.saved_for_backward
        if "inputs" in spec:
            saved.extend(op.inputs)
        if "outputs" in spec:
            saved.extend(op.outputs)
        # Parameters are always needed by the backward kernel (dgrad uses
        # the weights) even when the type spec only saves activations.
        for tid in op.inputs:
            if graph.tensors[tid].kind is TensorKind.PARAM and tid not in saved:
                saved.append(tid)

        grad_outputs: list[int] = []
        for tid in op.inputs:
            tensor = graph.tensors[tid]
            if tensor.kind is TensorKind.INPUT:
                continue  # data inputs receive no gradient
            if tensor.kind is TensorKind.WORKSPACE:
                continue
            kind = (
                TensorKind.GRAD_PARAM
                if tensor.kind is TensorKind.PARAM
                else TensorKind.GRAD_ACTIVATION
            )
            grad = graph.add_tensor(
                f"grad({tensor.name})~{op.name}",
                tensor.shape,
                dtype=tensor.dtype,
                kind=kind,
                split_axes=dict(tensor.split_axes),
            )
            self.contributions.setdefault(tid, []).append(grad.tensor_id)
            grad_outputs.append(grad.tensor_id)

        if not grad_outputs:
            return

        ratio = op.op_type.info.backward_flops_ratio
        graph.add_op(
            f"d_{op.name}",
            op.op_type,
            inputs=out_grads + saved,
            outputs=grad_outputs,
            attrs={"forward_op": op.op_id, **_backward_attrs(op)},
            phase=Phase.BACKWARD,
            flops=op.flops * ratio,
            workspace_bytes=op.workspace_bytes,
        )

    def _materialize_grad(self, tensor_id: int) -> int | None:
        """Finalize grad(tensor): accumulate partials if there are several."""
        if tensor_id in self.grad_of:
            return self.grad_of[tensor_id]
        partials = self.contributions.get(tensor_id, [])
        if not partials:
            return None
        if len(partials) == 1:
            self.grad_of[tensor_id] = partials[0]
            return partials[0]
        graph = self.graph
        tensor = graph.tensors[tensor_id]
        total = graph.add_tensor(
            f"grad({tensor.name})",
            tensor.shape,
            dtype=tensor.dtype,
            kind=graph.tensors[partials[0]].kind,
            split_axes=dict(tensor.split_axes),
        )
        graph.add_op(
            f"accum_grad({tensor.name})",
            OpType.GRAD_ACCUM,
            inputs=partials,
            outputs=[total],
            phase=Phase.BACKWARD,
            flops=float(tensor.numel * (len(partials) - 1)),
        )
        self.grad_of[tensor_id] = total.tensor_id
        return total.tensor_id


def _backward_attrs(op: Operator) -> dict:
    """Attributes propagated from forward to backward ops."""
    keep = ("stride", "padding", "kernel", "axis")
    return {k: op.attrs[k] for k in keep if k in op.attrs}


def _add_update_phase(
    graph: Graph, builder: _BackwardBuilder, optimizer: str,
) -> None:
    """Append one update op per parameter that received a gradient."""
    slots = OPTIMIZER_STATE_SLOTS[optimizer]
    op_type = OpType.ADAM_UPDATE if optimizer == "adam" else OpType.SGD_UPDATE
    for param in graph.parameters():
        grad = builder._materialize_grad(param.tensor_id)
        if grad is None:
            continue
        states = [
            graph.add_tensor(
                f"opt_state{i}({param.name})",
                param.shape,
                dtype=param.dtype,
                kind=TensorKind.OPTIMIZER_STATE,
                split_axes=dict(param.split_axes),
            )
            for i in range(slots)
        ]
        flops_per_elem = {"sgd": 2.0, "sgd_momentum": 4.0, "adam": 10.0}[optimizer]
        graph.add_op(
            f"update({param.name})",
            op_type,
            inputs=[param, grad, *states],
            outputs=[],
            attrs={"param": param.tensor_id, "optimizer": optimizer},
            phase=Phase.UPDATE,
            flops=param.numel * flops_per_elem,
        )
