"""Operator taxonomy: the nodes of the dataflow graph.

Each :class:`Operator` references input/output tensors by id and carries an
analytic work estimate (FLOPs and bytes touched) that the hardware model
(``repro.hardware.kernels``) converts into execution time. The per-type
metadata here also drives policy decisions: which operators SuperNeurons
treats as convolutions to swap around, which are "cheap to recompute", and
which tensor dimensions survive a split.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """Training phase an operator belongs to."""

    FORWARD = "forward"
    BACKWARD = "backward"
    UPDATE = "update"
    MEMORY = "memory"  # augmented-graph ops: split/merge/swap


class ComputeClass(enum.Enum):
    """Coarse roofline position of a kernel.

    COMPUTE_BOUND kernels (conv, matmul) are limited by FLOP throughput and
    keep high GPU utilisation even for moderately small inputs.
    MEMORY_BOUND kernels (elementwise, normalisation, pooling) are limited
    by device memory bandwidth; splitting them mostly adds launch overhead.
    TRANSFER ops move bytes over PCIe and run on copy streams.
    """

    COMPUTE_BOUND = "compute_bound"
    MEMORY_BOUND = "memory_bound"
    TRANSFER = "transfer"
    FREE = "free"  # zero-cost bookkeeping (reshape views)


@dataclass(frozen=True)
class OpTypeInfo:
    """Static metadata attached to each :class:`OpType` member.

    ``kernel`` is a unique kernel-family name; it also guarantees every
    enum member has a distinct value (Python enums alias members with
    equal values, which would silently merge op types).
    """

    kernel: str
    compute_class: ComputeClass
    # Which forward tensors the backward op needs ("inputs", "outputs").
    saved_for_backward: frozenset[str]
    # SuperNeurons' classification: cheap ops are recomputed, not swapped.
    cheap_to_recompute: bool = False
    is_conv: bool = False
    # Ratio of backward FLOPs to forward FLOPs (dgrad + wgrad ~ 2x).
    backward_flops_ratio: float = 2.0
    # Whether executing the op split along the sample axis is semantically
    # safe without cross-sample communication (BN is the exception).
    sample_splittable: bool = True


_SAVE_NONE: frozenset[str] = frozenset()
_SAVE_IN = frozenset({"inputs"})
_SAVE_OUT = frozenset({"outputs"})
_SAVE_BOTH = frozenset({"inputs", "outputs"})


class OpType(enum.Enum):
    """All operator types known to the framework."""

    # -- forward compute ---------------------------------------------------
    CONV2D = OpTypeInfo(
        "conv2d", ComputeClass.COMPUTE_BOUND, _SAVE_IN, is_conv=True)
    MATMUL = OpTypeInfo(
        "matmul", ComputeClass.COMPUTE_BOUND, _SAVE_IN)
    BATCHNORM = OpTypeInfo(
        "batchnorm", 
        ComputeClass.MEMORY_BOUND, _SAVE_IN, cheap_to_recompute=True,
        backward_flops_ratio=1.5, sample_splittable=False,
    )
    LAYERNORM = OpTypeInfo(
        "layernorm", 
        ComputeClass.MEMORY_BOUND, _SAVE_IN, cheap_to_recompute=True,
        backward_flops_ratio=1.5,
    )
    RELU = OpTypeInfo(
        "relu", 
        ComputeClass.MEMORY_BOUND, _SAVE_OUT, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    GELU = OpTypeInfo(
        "gelu", 
        ComputeClass.MEMORY_BOUND, _SAVE_IN, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    ADD = OpTypeInfo(
        "add", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, cheap_to_recompute=True,
        backward_flops_ratio=0.5,
    )
    POOL_MAX = OpTypeInfo(
        "pool_max", 
        ComputeClass.MEMORY_BOUND, _SAVE_BOTH, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    POOL_AVG = OpTypeInfo(
        "pool_avg", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    SOFTMAX = OpTypeInfo(
        "softmax", 
        ComputeClass.MEMORY_BOUND, _SAVE_OUT, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    DROPOUT = OpTypeInfo(
        "dropout", 
        ComputeClass.MEMORY_BOUND, _SAVE_OUT, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    EMBEDDING = OpTypeInfo(
        "embedding", 
        ComputeClass.MEMORY_BOUND, _SAVE_IN, backward_flops_ratio=1.0,
    )
    CONCAT = OpTypeInfo(
        "concat", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    RESHAPE = OpTypeInfo(
        "reshape", 
        ComputeClass.FREE, _SAVE_NONE, cheap_to_recompute=True,
        backward_flops_ratio=1.0,
    )
    CROSS_ENTROPY = OpTypeInfo(
        "cross_entropy", 
        ComputeClass.MEMORY_BOUND, _SAVE_BOTH, backward_flops_ratio=1.0,
    )

    # -- backward / update -------------------------------------------------
    BACKWARD = OpTypeInfo(
        "backward", ComputeClass.COMPUTE_BOUND, _SAVE_NONE)
    GRAD_ACCUM = OpTypeInfo(
        "grad_accum", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, backward_flops_ratio=1.0,
    )
    SGD_UPDATE = OpTypeInfo(
        "sgd_update", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, backward_flops_ratio=1.0,
    )
    ADAM_UPDATE = OpTypeInfo(
        "adam_update", 
        ComputeClass.MEMORY_BOUND, _SAVE_NONE, backward_flops_ratio=1.0,
    )

    # -- augmented-graph memory operators (Figure 10) ----------------------
    SPLIT = OpTypeInfo(
        "split", ComputeClass.MEMORY_BOUND, _SAVE_NONE)
    MERGE = OpTypeInfo(
        "merge", ComputeClass.MEMORY_BOUND, _SAVE_NONE)
    SWAP_OUT = OpTypeInfo(
        "swap_out", ComputeClass.TRANSFER, _SAVE_NONE)
    SWAP_IN = OpTypeInfo(
        "swap_in", ComputeClass.TRANSFER, _SAVE_NONE)

    # -- multi-rank collectives (cluster parallelism transforms) -----------
    # First-class transfer ops: they occupy communication lanes, are
    # priced by the cluster link cost model (repro.hardware.cluster),
    # and — like swaps — are never profiled or split by the planner.
    ALL_REDUCE = OpTypeInfo(
        "all_reduce", ComputeClass.TRANSFER, _SAVE_NONE,
        sample_splittable=False)
    ALL_GATHER = OpTypeInfo(
        "all_gather", ComputeClass.TRANSFER, _SAVE_NONE,
        sample_splittable=False)
    REDUCE_SCATTER = OpTypeInfo(
        "reduce_scatter", ComputeClass.TRANSFER, _SAVE_NONE,
        sample_splittable=False)

    @property
    def info(self) -> OpTypeInfo:
        return self.value

    @property
    def compute_class(self) -> ComputeClass:
        return self.value.compute_class

    @property
    def is_conv(self) -> bool:
        return self.value.is_conv

    @property
    def cheap_to_recompute(self) -> bool:
        return self.value.cheap_to_recompute

    @property
    def saved_for_backward(self) -> frozenset[str]:
        return self.value.saved_for_backward

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpType.{self.name}"


@dataclass
class Operator:
    """One node of the dataflow graph.

    Parameters
    ----------
    op_id:
        Unique id within the owning graph.
    name:
        Human-readable name (``"conv1_1"`` or ``"d_conv1_1"``).
    op_type:
        Member of :class:`OpType`.
    inputs / outputs:
        Tensor ids, in positional order. For backward ops the convention is
        ``[output_grad(s)..., saved forward tensors..., params...]``.
    attrs:
        Free-form attributes (stride, padding, axis, ...). Backward ops
        store ``forward_op``; memory ops store their target tensor.
    phase:
        Which training phase the op belongs to.
    flops:
        Analytic FLOP count for this op (already includes the backward
        multiplier for backward ops).
    bytes_accessed:
        Bytes read + written by the kernel; used for memory-bound timing.
    workspace_bytes:
        Transient scratch the kernel needs while running (e.g. im2col /
        FFT convolution workspace). Allocated at op start, freed at end.
    """

    op_id: int
    name: str
    op_type: OpType
    inputs: list[int] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)
    phase: Phase = Phase.FORWARD
    flops: float = 0.0
    bytes_accessed: int = 0
    workspace_bytes: int = 0

    @property
    def is_backward(self) -> bool:
        return self.phase is Phase.BACKWARD

    @property
    def forward_op(self) -> int | None:
        """For backward ops: the op id of the forward op they differentiate."""
        return self.attrs.get("forward_op")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Operator(id={self.op_id}, name={self.name!r}, "
            f"type={self.op_type.name}, phase={self.phase.value})"
        )


def conv2d_flops(batch: int, in_channels: int, out_channels: int,
                 out_h: int, out_w: int, kernel_h: int, kernel_w: int) -> float:
    """FLOPs of a direct 2-D convolution (multiply-accumulate counted as 2)."""
    return 2.0 * batch * out_channels * out_h * out_w * in_channels * kernel_h * kernel_w


def matmul_flops(m: int, n: int, k: int) -> float:
    """FLOPs of an (m, k) x (k, n) matrix multiplication."""
    return 2.0 * m * n * k
