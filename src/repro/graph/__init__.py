"""Dataflow-graph DNN framework substrate.

This package implements the computation-graph layer the paper's system is
built on (Section II): tensors as edges, operators as nodes, a DFS
execution scheduler (Algorithm 1), automatic construction of the backward
graph, and liveness/memory-requirement analysis (Figure 4).
"""

from repro.graph.tensor import TensorKind, TensorSpec
from repro.graph.ops import OpType, Operator, Phase
from repro.graph.graph import Graph
from repro.graph.scheduler import dfs_schedule, memory_aware_schedule
from repro.graph.autodiff import build_training_graph
from repro.graph.serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_graph,
    save_plan,
)
from repro.graph.liveness import (
    LivenessInfo,
    compute_liveness,
    memory_curve,
    live_tensor_counts,
    peak_memory,
)

__all__ = [
    "TensorKind",
    "TensorSpec",
    "OpType",
    "Operator",
    "Phase",
    "Graph",
    "dfs_schedule",
    "memory_aware_schedule",
    "build_training_graph",
    "LivenessInfo",
    "compute_liveness",
    "memory_curve",
    "live_tensor_counts",
    "peak_memory",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_graph",
    "save_plan",
]
