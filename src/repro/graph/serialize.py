"""Graph and plan (de)serialization to plain JSON-compatible dicts.

Lets users persist a model's dataflow graph and a planner's decisions,
diff plans across hardware, or ship a plan to another process — the
"augmented dataflow graph that can be converted into the executable
model" workflow of the paper's Section VI-D, minus the framework
conversion.
"""

from __future__ import annotations

import json

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.ops import OpType, Phase
from repro.graph.tensor import TensorKind
from repro.units import DType

_DTYPES = {d.type_name: d for d in DType}
_KINDS = {k.value: k for k in TensorKind}
_PHASES = {p.value: p for p in Phase}
_OPTYPES = {t.name: t for t in OpType}


def graph_to_dict(graph: Graph) -> dict:
    """Serialize a graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "tensors": [
            {
                "id": t.tensor_id,
                "name": t.name,
                "shape": list(t.shape),
                "dtype": t.dtype.type_name,
                "kind": t.kind.value,
                "split_axes": dict(t.split_axes),
            }
            for t in graph.tensors.values()
        ],
        "ops": [
            {
                "id": op.op_id,
                "name": op.name,
                "type": op.op_type.name,
                "inputs": list(op.inputs),
                "outputs": list(op.outputs),
                "attrs": {
                    k: v for k, v in op.attrs.items()
                    if isinstance(v, (int, float, str, bool))
                },
                "phase": op.phase.value,
                "flops": op.flops,
                "bytes_accessed": op.bytes_accessed,
                "workspace_bytes": op.workspace_bytes,
            }
            for op in graph.ops.values()
        ],
    }


def graph_from_dict(data: dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Raises
    ------
    GraphError
        On unknown enum names or non-contiguous ids.
    """
    graph = Graph(data.get("name", "graph"))
    for entry in sorted(data["tensors"], key=lambda e: e["id"]):
        tensor = graph.add_tensor(
            entry["name"],
            tuple(entry["shape"]),
            dtype=_lookup(_DTYPES, entry["dtype"], "dtype"),
            kind=_lookup(_KINDS, entry["kind"], "tensor kind"),
            split_axes={k: int(v) for k, v in entry["split_axes"].items()},
        )
        if tensor.tensor_id != entry["id"]:
            raise GraphError(
                f"non-contiguous tensor ids: expected {tensor.tensor_id}, "
                f"got {entry['id']}"
            )
    for entry in sorted(data["ops"], key=lambda e: e["id"]):
        op = graph.add_op(
            entry["name"],
            _lookup(_OPTYPES, entry["type"], "op type"),
            inputs=entry["inputs"],
            outputs=entry["outputs"],
            attrs=dict(entry.get("attrs", {})),
            phase=_lookup(_PHASES, entry["phase"], "phase"),
            flops=entry.get("flops", 0.0),
            bytes_accessed=entry.get("bytes_accessed"),
            workspace_bytes=entry.get("workspace_bytes", 0),
        )
        if op.op_id != entry["id"]:
            raise GraphError(
                f"non-contiguous op ids: expected {op.op_id}, "
                f"got {entry['id']}"
            )
    return graph


def plan_to_dict(plan) -> dict:
    """Serialize a plan to a JSON-compatible dict."""
    return {
        "policy": plan.policy,
        "cpu_update": plan.cpu_update,
        "configs": [
            {
                "tensor": tid,
                "opt": cfg.opt.value,
                "p_num": cfg.p_num,
                "dim": cfg.dim,
            }
            for tid, cfg in sorted(plan.configs.items())
        ],
    }


def plan_from_dict(data: dict):
    """Rebuild a plan from :func:`plan_to_dict` output."""
    # Imported lazily: repro.core.plan itself imports this package.
    from repro.core.plan import MemOption, Plan, TensorConfig

    options = {o.value: o for o in MemOption}
    plan = Plan(
        policy=data.get("policy", "imported"),
        cpu_update=bool(data.get("cpu_update", False)),
    )
    for entry in data.get("configs", []):
        plan.set(int(entry["tensor"]), TensorConfig(
            opt=_lookup(options, entry["opt"], "memory option"),
            p_num=int(entry.get("p_num", 1)),
            dim=entry.get("dim", "sample"),
        ))
    return plan


def save_graph(graph: Graph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle)


def load_graph(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path) as handle:
        return graph_from_dict(json.load(handle))


def save_plan(plan, path: str) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=1)


def load_plan(path: str):
    """Read a plan from a JSON file."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))


def _lookup(table: dict, key: str, what: str):
    try:
        return table[key]
    except KeyError:
        raise GraphError(f"unknown {what} {key!r}") from None
