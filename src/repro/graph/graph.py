"""The dataflow graph: tensors as edges, operators as nodes.

The graph is append-only during construction; model builders create
tensors and operators through :meth:`Graph.add_tensor` /
:meth:`Graph.add_op`, which maintain producer/consumer wiring and default
work estimates. Once built, graphs are treated as immutable by the
scheduler, planner and runtime (the augmenter produces a *new* graph).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.graph.ops import ComputeClass, Operator, OpType, Phase
from repro.graph.tensor import TensorKind, TensorSpec
from repro.units import DType, format_bytes


class Graph:
    """A training-iteration dataflow graph.

    Attributes
    ----------
    name:
        Model name, e.g. ``"vgg16[b=64]"``.
    tensors:
        Mapping of tensor id to :class:`TensorSpec`.
    ops:
        Mapping of op id to :class:`Operator`, in insertion order (Python
        dicts preserve it), which is also a valid topological order for
        graphs built front-to-back.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.tensors: dict[int, TensorSpec] = {}
        self.ops: dict[int, Operator] = {}
        self._next_tensor_id = 0
        self._next_op_id = 0

    # -- construction -------------------------------------------------------

    def add_tensor(
        self,
        name: str,
        shape: tuple[int, ...],
        *,
        dtype: DType = DType.FLOAT32,
        kind: TensorKind = TensorKind.ACTIVATION,
        split_axes: dict[str, int] | None = None,
    ) -> TensorSpec:
        """Create a tensor and register it with the graph."""
        tensor = TensorSpec(
            tensor_id=self._next_tensor_id,
            name=name,
            shape=tuple(shape),
            dtype=dtype,
            kind=kind,
            split_axes=dict(split_axes or {}),
        )
        self.tensors[tensor.tensor_id] = tensor
        self._next_tensor_id += 1
        return tensor

    def add_op(
        self,
        name: str,
        op_type: OpType,
        inputs: Iterable[TensorSpec | int],
        outputs: Iterable[TensorSpec | int],
        *,
        attrs: dict | None = None,
        phase: Phase = Phase.FORWARD,
        flops: float | None = None,
        bytes_accessed: int | None = None,
        workspace_bytes: int = 0,
    ) -> Operator:
        """Create an operator, wiring tensor producer/consumer links.

        ``flops`` defaults to 0 (callers building compute ops should pass
        an analytic estimate); ``bytes_accessed`` defaults to the sum of
        input and output tensor sizes, the natural traffic of a one-pass
        kernel.
        """
        input_ids = [self._tensor_id(t) for t in inputs]
        output_ids = [self._tensor_id(t) for t in outputs]
        op = Operator(
            op_id=self._next_op_id,
            name=name,
            op_type=op_type,
            inputs=input_ids,
            outputs=output_ids,
            attrs=dict(attrs or {}),
            phase=phase,
            flops=float(flops or 0.0),
            workspace_bytes=int(workspace_bytes),
        )
        if bytes_accessed is None:
            bytes_accessed = sum(
                self.tensors[t].size_bytes for t in input_ids + output_ids
            )
        op.bytes_accessed = int(bytes_accessed)

        for tid in output_ids:
            tensor = self.tensors[tid]
            if tensor.producer is not None:
                raise GraphError(
                    f"tensor {tensor.name!r} already has producer op "
                    f"{tensor.producer}; op {name!r} cannot produce it too"
                )
            tensor.producer = op.op_id
        for tid in input_ids:
            self.tensors[tid].consumers.append(op.op_id)

        self.ops[op.op_id] = op
        self._next_op_id += 1
        return op

    def _tensor_id(self, tensor: TensorSpec | int) -> int:
        tid = tensor.tensor_id if isinstance(tensor, TensorSpec) else int(tensor)
        if tid not in self.tensors:
            raise GraphError(f"unknown tensor id {tid} in graph {self.name!r}")
        return tid

    # -- queries -------------------------------------------------------------

    def tensor(self, tensor_id: int) -> TensorSpec:
        return self.tensors[tensor_id]

    def op(self, op_id: int) -> Operator:
        return self.ops[op_id]

    def ops_in_phase(self, phase: Phase) -> list[Operator]:
        return [op for op in self.ops.values() if op.phase is phase]

    def tensors_of_kind(self, kind: TensorKind) -> list[TensorSpec]:
        return [t for t in self.tensors.values() if t.kind is kind]

    def parameters(self) -> list[TensorSpec]:
        return self.tensors_of_kind(TensorKind.PARAM)

    def activations(self) -> list[TensorSpec]:
        return self.tensors_of_kind(TensorKind.ACTIVATION)

    def graph_inputs(self) -> list[TensorSpec]:
        return self.tensors_of_kind(TensorKind.INPUT)

    def parameter_bytes(self) -> int:
        return sum(t.size_bytes for t in self.parameters())

    def activation_bytes(self) -> int:
        return sum(t.size_bytes for t in self.activations())

    def total_flops(self) -> float:
        return sum(op.flops for op in self.ops.values())

    def has_conv(self) -> bool:
        """Whether the model contains any convolution (vDNN-conv target)."""
        return any(op.op_type.is_conv for op in self.ops.values())

    def consumers_of(self, tensor_id: int) -> list[Operator]:
        return [self.ops[oid] for oid in self.tensors[tensor_id].consumers]

    def producer_of(self, tensor_id: int) -> Operator | None:
        """The op producing a tensor, or None for sources."""
        producer = self.tensors[tensor_id].producer
        return None if producer is None else self.ops[producer]

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.ops.values())

    def __len__(self) -> int:
        return len(self.ops)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        Invariants: every non-source tensor has a producer; every op
        references known tensors; insertion order is a topological order
        (producers appear before consumers); no op lists a tensor as both
        input and output.
        """
        for tensor in self.tensors.values():
            source = tensor.kind in (
                TensorKind.INPUT, TensorKind.PARAM, TensorKind.OPTIMIZER_STATE,
            )
            if tensor.producer is None and not source and tensor.consumers:
                raise GraphError(
                    f"tensor {tensor.name!r} is consumed but never produced"
                )
        for op in self.ops.values():
            overlap = set(op.inputs) & set(op.outputs)
            if overlap and op.op_type not in (
                OpType.SGD_UPDATE, OpType.ADAM_UPDATE,
            ):
                names = [self.tensors[t].name for t in overlap]
                raise GraphError(
                    f"op {op.name!r} uses tensors {names} as both input "
                    f"and output"
                )
            for tid in op.inputs:
                producer = self.tensors[tid].producer
                if producer is not None and producer >= op.op_id:
                    raise GraphError(
                        f"op {op.name!r} (id {op.op_id}) consumes tensor "
                        f"{self.tensors[tid].name!r} produced by later op "
                        f"{producer}; insertion order is not topological"
                    )

    # -- reporting -----------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable summary of the graph."""
        phases = {phase: 0 for phase in Phase}
        for op in self.ops.values():
            phases[op.phase] += 1
        transfer_ops = sum(
            1 for op in self.ops.values()
            if op.op_type.compute_class is ComputeClass.TRANSFER
        )
        lines = [
            f"Graph {self.name!r}: {len(self.ops)} ops, "
            f"{len(self.tensors)} tensors",
            f"  forward={phases[Phase.FORWARD]} backward={phases[Phase.BACKWARD]}"
            f" update={phases[Phase.UPDATE]} memory={phases[Phase.MEMORY]}"
            f" (transfer={transfer_ops})",
            f"  parameters: {format_bytes(self.parameter_bytes())}",
            f"  activations: {format_bytes(self.activation_bytes())}",
            f"  total FLOPs: {self.total_flops():.3e}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(name={self.name!r}, ops={len(self.ops)}, tensors={len(self.tensors)})"
