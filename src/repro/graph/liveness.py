"""Tensor liveness and memory-requirement analysis.

The paper (Section IV-A) predicts the GPU memory requirement ``M_i`` at
each scheduled operation as the total size of live tensors, where a tensor
lives from the start of its producing operation to the end of its last
consuming operation, and persistent tensors (parameters, optimizer state,
the input batch) live for the whole iteration. This module computes those
curves; Figure 4 and every OOM/bottleneck decision are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.tensor import TensorKind

#: Tensors of these kinds are resident for the entire iteration.
PERSISTENT_KINDS = frozenset({
    TensorKind.PARAM,
    TensorKind.OPTIMIZER_STATE,
    TensorKind.INPUT,
})


@dataclass
class LivenessInfo:
    """Liveness intervals of every tensor against a schedule.

    Attributes
    ----------
    schedule:
        The op-id schedule the analysis was computed against.
    position:
        Maps op id -> index in ``schedule``.
    alloc_step / free_step:
        For each tensor id, the schedule indices of its allocation and its
        last use. Persistent tensors get ``(0, len(schedule) - 1)``.
        Tensors that are never produced nor consumed are absent.
    """

    schedule: list[int]
    position: dict[int, int]
    alloc_step: dict[int, int]
    free_step: dict[int, int]

    def interval(self, tensor_id: int) -> tuple[int, int]:
        """(alloc, free) schedule indices of a tensor, inclusive."""
        return self.alloc_step[tensor_id], self.free_step[tensor_id]

    def is_live_at(self, tensor_id: int, step: int) -> bool:
        """Whether the tensor occupies memory at a schedule step."""
        if tensor_id not in self.alloc_step:
            return False
        return self.alloc_step[tensor_id] <= step <= self.free_step[tensor_id]

    def live_tensors_at(self, step: int) -> list[int]:
        """Tensor ids live at a schedule step (ascending id order)."""
        return [
            tid for tid in self.alloc_step
            if self.alloc_step[tid] <= step <= self.free_step[tid]
        ]


def compute_liveness(graph: Graph, schedule: list[int]) -> LivenessInfo:
    """Compute per-tensor live intervals against a schedule."""
    position = {op_id: idx for idx, op_id in enumerate(schedule)}
    last = len(schedule) - 1
    alloc_step: dict[int, int] = {}
    free_step: dict[int, int] = {}

    for tensor in graph.tensors.values():
        if tensor.kind in PERSISTENT_KINDS:
            alloc_step[tensor.tensor_id] = 0
            free_step[tensor.tensor_id] = last
            continue
        producer = tensor.producer
        if producer is None or producer not in position:
            continue  # dangling tensor: never materialized
        alloc = position[producer]
        uses = [
            position[c] for c in tensor.consumers if c in position
        ]
        free = max(uses) if uses else alloc
        alloc_step[tensor.tensor_id] = alloc
        free_step[tensor.tensor_id] = free

    return LivenessInfo(
        schedule=list(schedule),
        position=position,
        alloc_step=alloc_step,
        free_step=free_step,
    )


def memory_curve(
    graph: Graph,
    schedule: list[int],
    liveness: LivenessInfo | None = None,
    *,
    include_workspace: bool = True,
) -> np.ndarray:
    """``M_i`` for every schedule step, in bytes (float64 array).

    ``M_i`` is the sum of sizes of tensors live at step ``i`` plus, when
    ``include_workspace`` is set, the transient workspace of the op
    executing at step ``i``.
    """
    if liveness is None:
        liveness = compute_liveness(graph, schedule)
    steps = len(schedule)
    delta = np.zeros(steps + 1, dtype=np.float64)
    for tid, alloc in liveness.alloc_step.items():
        size = graph.tensors[tid].size_bytes
        delta[alloc] += size
        delta[liveness.free_step[tid] + 1] -= size
    curve = np.cumsum(delta[:steps])
    if include_workspace:
        for idx, op_id in enumerate(schedule):
            curve[idx] += graph.ops[op_id].workspace_bytes
    return curve


def live_tensor_counts(
    graph: Graph,
    schedule: list[int],
    liveness: LivenessInfo | None = None,
) -> np.ndarray:
    """Number of live tensors at each schedule step (Figure 4b)."""
    if liveness is None:
        liveness = compute_liveness(graph, schedule)
    steps = len(schedule)
    delta = np.zeros(steps + 1, dtype=np.int64)
    for tid, alloc in liveness.alloc_step.items():
        delta[alloc] += 1
        delta[liveness.free_step[tid] + 1] -= 1
    return np.cumsum(delta[:steps])


def peak_memory(graph: Graph, schedule: list[int] | None = None) -> int:
    """Peak memory requirement of the unoptimized execution, in bytes."""
    if schedule is None:
        from repro.graph.scheduler import dfs_schedule

        schedule = dfs_schedule(graph)
    curve = memory_curve(graph, schedule)
    return int(curve.max()) if len(curve) else 0
