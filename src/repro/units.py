"""Units, data types, and size helpers shared across the library.

Sizes are always tracked in *bytes* as plain ``int``; times in *seconds*
as ``float``; bandwidths in *bytes per second*. These helpers exist so the
rest of the code never hand-rolls ``1024 ** 3`` arithmetic.
"""

from __future__ import annotations

import enum

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Floating point operation counts are plain floats; throughputs in FLOP/s.
TFLOPS = 1e12
GBPS = 1e9


class DType(enum.Enum):
    """Element types supported by the simulated framework."""

    FLOAT16 = ("float16", 2)
    FLOAT32 = ("float32", 4)
    FLOAT64 = ("float64", 8)
    INT32 = ("int32", 4)
    INT64 = ("int64", 8)

    def __init__(self, type_name: str, nbytes: int) -> None:
        self.type_name = type_name
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


def format_bytes(num_bytes: int | float) -> str:
    """Render a byte count in human units (``"1.50 GB"``)."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(size) < 1024.0 or unit == "TB":
            return f"{size:.2f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Render a duration in the most readable unit (``"12.3 ms"``)."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.3f} us"


def numel(shape: tuple[int, ...]) -> int:
    """Number of elements of a tensor with the given shape."""
    count = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"negative dimension in shape {shape}")
        count *= dim
    return count


def size_bytes(shape: tuple[int, ...], dtype: DType = DType.FLOAT32) -> int:
    """Size in bytes of a dense tensor with the given shape and dtype."""
    return numel(shape) * dtype.nbytes
